"""The combine pass: forward substitution bounded by machine legality.

This is the reproduction of vpo's central mechanism: pairs of RTLs are
symbolically merged, and the merge is *kept only if the resulting RTL is
a legal instruction* on the target.  On WM this is what folds address
arithmetic into dual-operation instructions (``r31 := (r22<<3) + r24``);
on a plain scalar machine the same pass degrades gracefully because
deeper trees fail the legality test.

Constant folding, copy propagation and algebraic simplification
(multiply-by-power-of-two into shifts) are performed as part of the
same forward walk.
"""

from __future__ import annotations

from typing import Optional

from ..machine.base import Machine
from ..rtl.expr import (
    BinOp, Expr, Imm, Mem, Reg, Sym, UnOp, VReg, _iter_bits, cell_index,
    fifo_reg_mask, fold, regs_in, subst, walk,
)
from ..rtl.instr import Assign, Call, Instr
from .cfg import CFG

__all__ = ["combine_cfg", "simplify_expr", "is_fifo_reg"]

FIFO_INDICES = (0, 1)


def is_fifo_reg(expr: Expr) -> bool:
    """True for the WM FIFO registers r0/r1/f0/f1 (side-effecting)."""
    return isinstance(expr, Reg) and expr.index in FIFO_INDICES


def _touches_fifo(instr: Instr) -> bool:
    # Equivalent to scanning every use expression (and the defs) for a
    # FIFO register: the cached use/def masks cover exactly the register
    # occurrences of the operand trees, and the fifo mask only carries
    # hard-register (Reg) bits.
    return bool((instr.uses_mask() | instr.defs_mask()) & fifo_reg_mask())


def _is_pow2(value: int) -> bool:
    return value > 0 and (value & (value - 1)) == 0


def _has_fp_reg(expr: Expr) -> bool:
    return any(isinstance(e, (Reg, VReg)) and e.bank == "f"
               for e in walk(expr))


#: Expressions already known to be their own simplification fixpoint,
#: keyed by object id (the dict holds a strong reference, so an id can
#: never be reused while its entry is present).  Expression nodes are
#: immutable and heavily shared, and the combine pass re-simplifies the
#: same operand trees on every invocation — the common no-change case
#: becomes one dict probe instead of a full tree walk.
_SIMPLIFY_FIXPOINTS: dict[int, Expr] = {}


def simplify_expr(expr: Expr) -> Expr:
    """Fold constants and apply integer algebraic rewrites.

    Multiplication by a power of two becomes a shift (only for integer
    expressions — floating-point multiplies are left alone).
    """
    memo = _SIMPLIFY_FIXPOINTS
    if memo.get(id(expr)) is expr:
        return expr
    out = _rewrite(fold(expr))
    if out is expr:
        if len(memo) > 1 << 16:   # unbounded growth guard
            memo.clear()
        memo[id(expr)] = expr
    return out


def _rewrite(expr: Expr) -> Expr:
    if isinstance(expr, BinOp):
        left = _rewrite(expr.left)
        right = _rewrite(expr.right)
        e = expr if (left is expr.left and right is expr.right) \
            else BinOp(expr.op, left, right)
        if e.op == "*" and not _has_fp_reg(e):
            if isinstance(e.right, Imm) and isinstance(e.right.value, int) \
                    and _is_pow2(e.right.value) and e.right.value > 1:
                return BinOp("<<", e.left,
                             Imm(e.right.value.bit_length() - 1))
            if isinstance(e.left, Imm) and isinstance(e.left.value, int) \
                    and _is_pow2(e.left.value) and e.left.value > 1:
                return BinOp("<<", e.right, Imm(e.left.value.bit_length() - 1))
        return e
    if isinstance(expr, UnOp):
        operand = _rewrite(expr.operand)
        if operand is expr.operand:
            return expr
        return UnOp(expr.op, operand)
    if isinstance(expr, Mem):
        addr = _rewrite(expr.addr)
        if addr is expr.addr:
            return expr
        return Mem(addr, expr.width, expr.fp, expr.signed)
    return expr


class _DefRecord:
    """A forward-substitution candidate: reg := expr, with the version of
    every operand register (by interned-cell index) captured at
    definition time."""

    __slots__ = ("reg", "expr", "operand_versions")

    def __init__(self, reg: Expr, expr: Expr,
                 operand_versions: dict) -> None:
        self.reg = reg
        self.expr = expr
        self.operand_versions = operand_versions


def combine_block(block, machine: Machine) -> bool:
    """One forward-substitution walk over a block; True if changed.

    All bookkeeping is keyed by interned-cell index (small ints), so
    the hot loop never hashes an expression cell: versions, candidate
    defs and staleness checks are integer dict/bitmask operations.
    """
    changed = False
    versions: dict[int, int] = {}
    defs: dict[int, _DefRecord] = {}
    # Bitmask over interned cells of ``defs``'s keys, so consumers with
    # no substitutable operand bail on a single integer test.
    defs_mask = 0
    fifo_mask = fifo_reg_mask()

    for instr in block.instrs:
        # All instruction kinds participate as *consumers* via
        # map_exprs; only Assigns produce candidates.
        umask = instr.uses_mask()
        dmask = instr.defs_mask()
        if defs_mask & umask and not ((umask | dmask) & fifo_mask):
            if _substitute_into(instr, machine, defs, defs_mask, versions):
                changed = True
                umask = instr.uses_mask()
                dmask = instr.defs_mask()
        # Record/invalidate definitions.
        for i in _iter_bits(dmask):
            versions[i] = versions.get(i, 0) + 1
            if defs_mask & (1 << i):
                del defs[i]
                defs_mask &= ~(1 << i)
        if dmask and isinstance(instr, Assign) and \
                isinstance(instr.dst, (Reg, VReg)):
            # ``dst`` is a Reg/VReg, so a FIFO register anywhere in the
            # instruction shows up in the use/def masks; a memory cell
            # anywhere shows up in the cached mem-operand flag.
            if not instr.has_mem_operand() and not ((umask | dmask) & fifo_mask):
                # A single-bit defs mask: exactly the dst cell.
                dst_idx = dmask.bit_length() - 1
                op_versions = {}
                for i in _iter_bits(umask):
                    # Self-referential defs are recorded with the *old*
                    # version, which the def itself just bumped, so
                    # they will never substitute — correct.
                    op_versions[i] = versions.get(i, 0) - \
                        (1 if i == dst_idx else 0)
                defs[dst_idx] = _DefRecord(instr.dst, instr.src, op_versions)
                defs_mask |= dmask
    return changed


def _substitute_into(instr: Instr, machine: Machine, defs: dict,
                     defs_mask: int, versions: dict) -> bool:
    """Try substituting known defs into ``instr``'s operands."""
    # For every instruction kind with operand expressions (Assign,
    # Compare, stream and WM issue instructions) the cached uses mask
    # covers exactly the registers occurring in use_exprs(); the kinds
    # where uses() carries extras (Call args, Ret live-out, CondJump
    # CC) have no operand expressions at all.
    if not instr.use_exprs():
        return False
    changed = False
    for _round in range(8):
        progress = False
        if not (instr.uses_mask() & defs_mask):
            break
        # Candidate order deliberately follows the uses() set iteration
        # order (not ascending cell index) to keep the chosen
        # substitution — and therefore the emitted code — identical to
        # the original set-based implementation.
        for reg in instr.uses():
            i = cell_index(reg)
            if not (defs_mask >> i) & 1:
                continue
            record = defs[i]
            # operand registers must be unchanged since the definition
            stale = False
            for r, v in record.operand_versions.items():
                if versions.get(r, 0) != v:
                    stale = True
                    break
            if stale:
                continue
            if not _try_substitution(instr, machine, reg, record.expr):
                continue
            progress = True
            changed = True
            break
        if not progress:
            break
    return changed


def _try_substitution(instr: Instr, machine: Machine, reg, expr: Expr) -> bool:
    """Substitute ``reg := expr`` into ``instr`` if the result stays legal."""
    saved = _snapshot(instr)
    instr.map_exprs(lambda e: simplify_expr(subst(e, {reg: expr})))
    if machine.legal_instr(instr) and _same_or_better(saved, instr):
        return True
    _restore(instr, saved)
    return False


def _snapshot(instr: Instr):
    # The cached dataflow tuple is part of the snapshot: a restore puts
    # back the exact original operand objects, so the tuple saved here
    # is still valid afterwards and need not be recomputed.
    if isinstance(instr, Assign):
        return ("assign", instr.dst, instr.src, instr._df)
    state = {}
    for slot in getattr(type(instr), "__slots__", ()):
        state[slot] = getattr(instr, slot)
    return ("slots", state, instr._df)


def _restore(instr: Instr, saved) -> None:
    if saved[0] == "assign":
        instr._dst, instr._src, instr._df = saved[1], saved[2], saved[3]
    else:
        for slot, value in saved[1].items():
            setattr(instr, slot, value)
        instr._df = saved[2]


def _same_or_better(saved, instr: Instr) -> bool:
    """Reject substitutions that merely rename without simplifying and
    could ping-pong; any substitution that removes a register use or
    folds a constant is accepted."""
    return True


def combine_cfg(cfg: CFG, machine: Machine, max_rounds: int = 4) -> bool:
    """Run the combine pass to a (bounded) fixpoint over every block."""
    from ..obs import get_tracer
    any_change = False
    rounds = 0
    for block in cfg.blocks:
        for _ in range(max_rounds):
            if not combine_block(block, machine):
                break
            rounds += 1
            any_change = True
    if rounds:
        get_tracer().count("opt.combine.block_rounds", rounds)
    # Always at least simplify in place (fold constants) even when no
    # substitution fired.  Sweep mutations count as changes too — the
    # pipeline's pass-skipping relies on an accurate report, and a
    # simplification is visible as the cached dataflow being dropped.
    for block in cfg.blocks:
        for instr in block.instrs:
            if not _touches_fifo(instr):
                before = instr._df
                instr.map_exprs(simplify_expr)
                if instr._df is not before:
                    any_change = True
    return any_change
