"""Dataflow analyses over the CFG: liveness of register cells.

Liveness is tracked over :class:`~repro.rtl.expr.Reg`,
:class:`~repro.rtl.expr.VReg` and the per-unit condition-code cells
(:class:`~repro.rtl.instr.CCCell`).  Memory is not a dataflow cell; the
passes treat stores/calls as barriers explicitly.
"""

from __future__ import annotations

from typing import Iterator

from ..rtl.instr import Cell, Instr
from .cfg import Block, CFG

__all__ = ["Liveness", "compute_liveness"]


class Liveness:
    """Per-block live-in/live-out sets with per-instruction queries."""

    def __init__(self, live_in: dict[int, set[Cell]],
                 live_out: dict[int, set[Cell]]) -> None:
        self._live_in = live_in
        self._live_out = live_out

    def live_in(self, block: Block) -> set[Cell]:
        return self._live_in[id(block)]

    def live_out(self, block: Block) -> set[Cell]:
        return self._live_out[id(block)]

    def per_instr_live_out(self, block: Block) -> list[set[Cell]]:
        """live-after set for each instruction of ``block``, in order."""
        live = set(self._live_out[id(block)])
        result: list[set[Cell]] = [set() for _ in block.instrs]
        for idx in range(len(block.instrs) - 1, -1, -1):
            instr = block.instrs[idx]
            result[idx] = set(live)
            live -= instr.defs()
            live |= instr.uses()
        return result

    def iter_with_liveness(self, block: Block) -> Iterator[tuple[Instr, set[Cell]]]:
        """Yield (instr, live_after) pairs in forward order."""
        yield from zip(block.instrs, self.per_instr_live_out(block))


def compute_liveness(cfg: CFG) -> Liveness:
    """Iterative backward liveness over the CFG."""
    use: dict[int, set[Cell]] = {}
    define: dict[int, set[Cell]] = {}
    for block in cfg.blocks:
        u: set[Cell] = set()
        d: set[Cell] = set()
        for instr in block.instrs:
            u |= instr.uses() - d
            d |= instr.defs()
        use[id(block)] = u
        define[id(block)] = d
    live_in: dict[int, set[Cell]] = {id(b): set() for b in cfg.blocks}
    live_out: dict[int, set[Cell]] = {id(b): set() for b in cfg.blocks}
    changed = True
    while changed:
        changed = False
        for block in reversed(cfg.blocks):
            out: set[Cell] = set()
            for succ in block.succs:
                out |= live_in[id(succ)]
            inn = use[id(block)] | (out - define[id(block)])
            if out != live_out[id(block)] or inn != live_in[id(block)]:
                live_out[id(block)] = out
                live_in[id(block)] = inn
                changed = True
    return Liveness(live_in, live_out)
