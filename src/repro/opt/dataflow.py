"""Dataflow analyses over the CFG: liveness of register cells.

Liveness is tracked over :class:`~repro.rtl.expr.Reg`,
:class:`~repro.rtl.expr.VReg` and the per-unit condition-code cells
(:class:`~repro.rtl.instr.CCCell`).  Memory is not a dataflow cell; the
passes treat stores/calls as barriers explicitly.

Representation
--------------

Sets of cells are represented as Python-int bitmasks over the
process-wide interning table (:func:`repro.rtl.expr.cell_index`), so the
backward transfer function is two machine-word operations::

    in(B)  = use(B) | (out(B) & ~def(B))
    out(B) = OR over successors S of in(S)

and the solver is a worklist seeded in post-order (successors first,
which is the fast direction for a backward problem), falling back to
layout order for blocks unreachable from the entry.  Because the system
is monotone over a finite lattice and starts from bottom, the worklist
reaches the same unique least fixpoint as the old iterate-until-stable
set solver — the :class:`Liveness` façade decodes masks back to
(frozen)sets so existing callers keep working unchanged.

:func:`compute_liveness_reference` preserves the original ``set``-based
solver verbatim for differential testing.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Iterator, Optional

from ..rtl.expr import cells_of_mask
from ..rtl.instr import Cell, Instr
from .cfg import Block, CFG

__all__ = [
    "Liveness",
    "compute_liveness",
    "compute_liveness_reference",
    "solve_count",
    "refresh_count",
]

#: Number of full compute_liveness solves (per-instruction use/def sweep
#: over every block) since process start.  Read by tests and by the
#: AnalysisManager counter assertions; monotone, never reset.
_SOLVE_COUNT = 0

#: Number of incremental :meth:`Liveness.refresh` re-solves (int-only
#: worklist, instruction sweep limited to the changed blocks).
_REFRESH_COUNT = 0


def solve_count() -> int:
    """Process-wide count of full liveness solves (for tests)."""
    return _SOLVE_COUNT


def refresh_count() -> int:
    """Process-wide count of incremental liveness refreshes (for tests)."""
    return _REFRESH_COUNT


def _block_use_def(block: Block) -> tuple[int, int]:
    """(upward-exposed use mask, def mask) of one block."""
    u = 0
    d = 0
    for instr in block.instrs:
        u |= instr.uses_mask() & ~d
        d |= instr.defs_mask()
    return u, d


def _seed_order(cfg: CFG) -> list[Block]:
    """Post-order from the entry (successors first), then any blocks
    unreachable from the entry in layout order — the fixpoint must cover
    them too, since their live-out reads reachable blocks' live-in."""
    rpo = cfg.rpo()
    reached = {id(b) for b in rpo}
    order = rpo[::-1]
    order.extend(b for b in cfg.blocks if id(b) not in reached)
    return order


def _solve(order: list[Block], use: dict[int, int], define: dict[int, int],
           live_in: dict[int, int], live_out: dict[int, int]) -> None:
    """Run the worklist to the least fixpoint, updating the dicts in place."""
    queue = deque(order)
    queued = {id(b) for b in order}
    while queue:
        block = queue.popleft()
        queued.discard(id(block))
        out = 0
        for succ in block.succs:
            out |= live_in[id(succ)]
        live_out[id(block)] = out
        inn = use[id(block)] | (out & ~define[id(block)])
        if inn != live_in[id(block)]:
            live_in[id(block)] = inn
            for pred in block.preds:
                if id(pred) not in queued:
                    queued.add(id(pred))
                    queue.append(pred)


class Liveness:
    """Per-block live-in/live-out with per-instruction queries.

    Stores bitmasks internally; the set-returning accessors decode lazily
    (and memoized — see :func:`repro.rtl.expr.cells_of_mask`).  The
    returned sets are frozen; callers must not mutate them.
    """

    __slots__ = ("_cfg", "_in", "_out", "_use", "_def", "_per_instr")

    def __init__(self, cfg: CFG, live_in: dict[int, int],
                 live_out: dict[int, int], use: dict[int, int],
                 define: dict[int, int]) -> None:
        self._cfg = cfg
        self._in = live_in
        self._out = live_out
        self._use = use
        self._def = define
        #: id(block) -> (live_out mask at compute time, masks list);
        #: entries are dropped by :meth:`refresh` for changed blocks and
        #: guarded by the live-out mask for solver-driven changes.
        self._per_instr: dict[int, tuple[int, list[int]]] = {}

    # -- set-based API (decoding façade) ------------------------------------
    def live_in(self, block: Block) -> frozenset[Cell]:
        return cells_of_mask(self._in[id(block)])

    def live_out(self, block: Block) -> frozenset[Cell]:
        return cells_of_mask(self._out[id(block)])

    def per_instr_live_out(self, block: Block) -> list[frozenset[Cell]]:
        """live-after set for each instruction of ``block``, in order."""
        return [cells_of_mask(m) for m in self.per_instr_live_out_masks(block)]

    def iter_with_liveness(self, block: Block) \
            -> Iterator[tuple[Instr, frozenset[Cell]]]:
        """Yield (instr, live_after) pairs in forward order."""
        yield from zip(block.instrs, self.per_instr_live_out(block))

    # -- mask-based API ------------------------------------------------------
    def live_in_mask(self, block: Block) -> int:
        return self._in[id(block)]

    def live_out_mask(self, block: Block) -> int:
        return self._out[id(block)]

    def per_instr_live_out_masks(self, block: Block) -> list[int]:
        """live-after mask for each instruction of ``block``, in order.

        Memoized per block: DCE's fixpoint re-queries every block each
        round while deleting from few.  Callers must not mutate the
        returned list.
        """
        key = id(block)
        out = self._out[key]
        cached = self._per_instr.get(key)
        if cached is not None and cached[0] == out:
            return cached[1]
        live = out
        instrs = block.instrs
        result = [0] * len(instrs)
        for idx in range(len(instrs) - 1, -1, -1):
            instr = instrs[idx]
            result[idx] = live
            live = (live & ~instr.defs_mask()) | instr.uses_mask()
        self._per_instr[key] = (out, result)
        return result

    # -- incremental update --------------------------------------------------
    def refresh(self, changed_blocks: Optional[Iterable[Block]] = None) -> None:
        """Re-solve after instructions were deleted/rewritten in place.

        Per-block use/def masks are recomputed only for ``changed_blocks``
        (all blocks when ``None``); the live masks are then reset to
        bottom and the int-only worklist re-run.  The reset is required
        for correctness, not just simplicity: deletions *shrink* the
        solution, and re-iterating downward from the old fixpoint can
        stick at a greater fixpoint around loops (a dead self-sustaining
        live range keeps itself alive).  Starting from bottom always
        yields the least fixpoint, and costs only integer ops for the
        unchanged blocks.
        """
        global _REFRESH_COUNT
        _REFRESH_COUNT += 1
        cfg = self._cfg
        changed_ids = None if changed_blocks is None else \
            {id(b) for b in changed_blocks}
        if changed_ids is None:
            self._per_instr.clear()
        else:
            for bid in changed_ids:
                self._per_instr.pop(bid, None)
        for block in cfg.blocks:
            if changed_ids is None or id(block) in changed_ids or \
                    id(block) not in self._use:
                u, d = _block_use_def(block)
                self._use[id(block)] = u
                self._def[id(block)] = d
        live_in = {id(b): 0 for b in cfg.blocks}
        live_out = {id(b): 0 for b in cfg.blocks}
        _solve(_seed_order(cfg), self._use, self._def, live_in, live_out)
        self._in = live_in
        self._out = live_out


def compute_liveness(cfg: CFG) -> Liveness:
    """Bitset worklist backward liveness over the CFG."""
    global _SOLVE_COUNT
    _SOLVE_COUNT += 1
    use: dict[int, int] = {}
    define: dict[int, int] = {}
    for block in cfg.blocks:
        u, d = _block_use_def(block)
        use[id(block)] = u
        define[id(block)] = d
    live_in = {id(b): 0 for b in cfg.blocks}
    live_out = {id(b): 0 for b in cfg.blocks}
    _solve(_seed_order(cfg), use, define, live_in, live_out)
    return Liveness(cfg, live_in, live_out, use, define)


# ---------------------------------------------------------------------------
# reference implementation (pre-bitset), kept for differential testing
# ---------------------------------------------------------------------------


class _ReferenceLiveness:
    """The original set-based result object, for differential tests."""

    def __init__(self, live_in: dict[int, set[Cell]],
                 live_out: dict[int, set[Cell]]) -> None:
        self._live_in = live_in
        self._live_out = live_out

    def live_in(self, block: Block) -> set[Cell]:
        return self._live_in[id(block)]

    def live_out(self, block: Block) -> set[Cell]:
        return self._live_out[id(block)]

    def per_instr_live_out(self, block: Block) -> list[set[Cell]]:
        live = set(self._live_out[id(block)])
        result: list[set[Cell]] = []
        for idx in range(len(block.instrs) - 1, -1, -1):
            instr = block.instrs[idx]
            result.append(set(live))
            live -= instr.defs()
            live |= instr.uses()
        result.reverse()
        return result


def compute_liveness_reference(cfg: CFG) -> _ReferenceLiveness:
    """The original iterate-until-stable set-based liveness solver.

    Retained verbatim (modulo the result class) so tests can assert the
    bitset worklist reaches the identical fixpoint on real functions.
    """
    use: dict[int, set[Cell]] = {}
    define: dict[int, set[Cell]] = {}
    for block in cfg.blocks:
        u: set[Cell] = set()
        d: set[Cell] = set()
        for instr in block.instrs:
            u |= instr.uses() - d
            d |= instr.defs()
        use[id(block)] = u
        define[id(block)] = d
    live_in: dict[int, set[Cell]] = {id(b): set() for b in cfg.blocks}
    live_out: dict[int, set[Cell]] = {id(b): set() for b in cfg.blocks}
    changed = True
    while changed:
        changed = False
        for block in reversed(cfg.blocks):
            out: set[Cell] = set()
            for succ in block.succs:
                out |= live_in[id(succ)]
            inn = use[id(block)] | (out - define[id(block)])
            if out != live_out[id(block)] or inn != live_in[id(block)]:
                live_out[id(block)] = out
                live_in[id(block)] = inn
                changed = True
    return _ReferenceLiveness(live_in, live_out)
