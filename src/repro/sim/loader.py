"""Program loading: flatten an RtlModule for the simulator.

Functions are concatenated into one flat instruction array so a program
counter is a plain integer — storable in the link register and through
memory for recursion.  Labels (unique module-wide by construction) map
to absolute indices.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..rtl.instr import Instr, Label
from ..rtl.module import RtlModule

__all__ = ["Program", "load_program"]


@dataclass
class Program:
    """A flattened, loaded program image."""

    instrs: list[Instr] = field(default_factory=list)
    entry_of: dict[str, int] = field(default_factory=dict)
    label_index: dict[str, int] = field(default_factory=dict)
    entry_index: int = 0


def load_program(module: RtlModule) -> Program:
    program = Program()
    for name, fn in module.functions.items():
        program.entry_of[name] = len(program.instrs)
        for instr in fn.instrs:
            if isinstance(instr, Label):
                if instr.name in program.label_index:
                    raise ValueError(f"duplicate label {instr.name!r}")
                program.label_index[instr.name] = len(program.instrs)
            program.instrs.append(instr)
    if module.entry not in program.entry_of:
        raise ValueError(f"entry function {module.entry!r} not found")
    program.entry_index = program.entry_of[module.entry]
    return program
