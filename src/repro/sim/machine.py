"""Cycle-level simulator for the WM architecture.

Models the units the paper describes (and that its Table II measurement
relies on — "a simulator capable of determining exact cycle counts
(including memory delays)"):

* **IFU** — fetches/dispatches one instruction per cycle into per-unit
  queues; executes branches itself.  Unconditional jumps and labels are
  free; conditional jumps dequeue from the producing unit's
  condition-code FIFO (stalling while it is empty); ``JNIf`` jumps
  consult the stream state; cross-bank conversions synchronize the
  execution units.
* **IEU / FEU** — in-order execution from their queues, one instruction
  per cycle (multi-cycle costs for multiply/divide).  Register 0 (and 1
  when streaming) are FIFO queues: reading dequeues, writing enqueues;
  a unit stalls when input data has not arrived or the output FIFO is
  full.
* **SCU** — stream control units: after a ``SinD``/``SoutD`` is
  executed by the IEU (its base/count operands are integer registers),
  the SCU issues one memory request per stream per cycle, throttled by
  FIFO capacity and memory ports.
* **Memory** — fixed latency, limited ports; IEU requests are processed
  in issue order with a store buffer (loads wait for overlapping older
  stores).

Determinism: all intra-cycle ordering is fixed, and input-FIFO delivery
follows *reservation order* (the program order of the producing
instructions), so results are reproducible and comparable with the IR
reference interpreter.
"""

from __future__ import annotations

import weakref
from collections import deque
from dataclasses import dataclass, field
from typing import Optional

from ..ir.interp import c_div, c_rem, wrap32
from ..machine.wm import CVT_OPS, WMLoadIssue, WMStoreIssue, unit_of
from ..rtl.expr import BinOp, Expr, Imm, Mem, Reg, Sym, UnOp, VReg
from ..rtl.expr import walk as _walk
from ..rtl.instr import (
    Assign, Call, Compare, CondJump, Instr, Jump, JumpStreamNotDone, Label,
    Ret, StreamIn, StreamOut, StreamStop,
)
from ..rtl.module import RtlModule
from .decode import (
    _CMP, _INT_BIN, _OP_COST,
    E_ASSIGN, E_COMPARE, E_LOAD, E_SIN, E_SOUT, E_SSTOP, E_STORE,
    K_CALL, K_CONDJUMP, K_CVT, K_EXEC, K_JNI, K_JUMP, K_LABEL, K_RET,
    decode_module,
)
from .errors import SimError
from .fifo import FifoError, InFifo, OutFifo, Reservation
from .loader import Program, load_program
from .loopmap import loop_map_for
from .memory import MemError, MemorySystem, SimMemoryView, _pool_release
from .superops import FFEngine, superop_cache_for
from .telemetry import CycleLedger, SimTelemetry, StreamStats

__all__ = ["WMSimulator", "SimResult", "SimError", "simulate"]

HALT_PC = -1

#: unit stall reason (repro.sim._stall) -> cycle-ledger cause
_STALL_CAUSE = {
    "operand-wait": "fifo-empty",
    "output-full": "fifo-full",
    "cc-full": "fifo-full",
    "memory-port": "memory-latency",
    "store-conflict": "memory-latency",
    "stream-drain": "memory-latency",
}


@dataclass
class SimResult:
    """Outcome of a simulated run."""

    value: object
    cycles: int
    instructions: int
    unit_instructions: dict[str, int]
    memory_reads: int
    memory_writes: int
    stream_elements: int
    #: final memory image; a view that pickles only the data segment
    memory: SimMemoryView
    globals_base: dict[str, int]
    #: per-unit/FIFO/stream attribution; None unless telemetry was on
    telemetry: Optional["SimTelemetry"] = None

    def global_bytes(self, name: str, size: int) -> bytes:
        base = self.globals_base[name]
        return bytes(self.memory[base:base + size])


# The operator tables (_INT_BIN / _CMP / _OP_COST) live in
# repro.sim.decode, where the pre-decoder builds closures over them;
# they are re-imported above so the reference path shares them.


class _StreamState:
    """One active (or announced) stream on a FIFO."""

    __slots__ = ("kind", "bank", "index", "addr", "count", "stride",
                 "width", "fp", "reservation", "remaining", "jni_counter",
                 "active", "inflight", "stats", "seq")

    def __init__(self, kind: str, bank: str, index: int) -> None:
        self.stats = None  # StreamStats, telemetry runs only
        self.seq = 0       # global activation order (consistency interlock)
        self.kind = kind
        self.bank = bank
        self.index = index
        self.addr = 0
        self.count: Optional[int] = None
        self.stride = 0
        self.width = 8
        self.fp = True
        self.reservation: Optional[Reservation] = None
        self.remaining: Optional[int] = None
        self.jni_counter: Optional[int] = None
        self.active = False
        self.inflight = 0


class _Unit:
    """An in-order execution unit (IEU or FEU)."""

    def __init__(self, name: str, bank: str, queue_size: int = 12) -> None:
        self.name = name
        self.bank = bank
        self.queue: deque = deque()
        self.queue_size = queue_size
        self.regs: list = [0] * 32
        if bank == "f":
            self.regs = [0.0] * 32
        self.busy_until = 0
        self.executed = 0
        self.cc_fifo: deque = deque()

    def queue_full(self) -> bool:
        return len(self.queue) >= self.queue_size


class WMSimulator:
    """Executes a lowered WM RtlModule with cycle accounting."""

    def __init__(self, module: RtlModule, mem_size: int = 1 << 23,
                 mem_latency: int = 4, mem_ports: int = 2,
                 fifo_capacity: int = 8,
                 max_cycles: int = 500_000_000,
                 telemetry: bool = False,
                 profile: bool = False,
                 slow: bool = False,
                 fault_plan=None,
                 superops: bool = True,
                 fast_forward: bool = True) -> None:
        self.module = module
        #: slow=True runs the original tree-walking interpreter loop —
        #: the reference the decoded fast path is equivalence-tested
        #: against (tests/test_perf_equivalence.py)
        self.slow = slow
        #: a repro.qa.faults.FaultPlan (duck-typed: anything with an
        #: ``apply(sim, cycle)`` method).  Fault injection needs every
        #: cycle ticked — the stall fast-forward would jump over the
        #: chosen fire cycles — so a plan forces the reference loop.
        self.fault_plan = fault_plan
        if fault_plan is not None:
            self.slow = True
        self.program, self._dops = decode_module(module, load_program)
        self.memory = MemorySystem(module, size=mem_size,
                                   latency=mem_latency, ports=mem_ports)
        self.max_cycles = max_cycles
        self.telemetry: Optional[SimTelemetry] = None
        self._stall_reason: Optional[str] = None
        self._scu_active = False
        #: set by state changes that bypass _progress() (the infinite-
        #: stream dummy prefetch, FIFO pops by a load that then stalls);
        #: blocks fast-forward for the cycle
        self._activity = False
        if telemetry or profile:
            self.telemetry = SimTelemetry()
            self.memory.enable_region_stats()
        #: cycle ledger (profile=True): per-loop, per-cause attribution
        #: of every unit cycle, plus back-edge iteration tracking
        self._ledger: Optional[CycleLedger] = None
        self._loop_of: Optional[list] = None
        if profile:
            loopmap = loop_map_for(module, self.program, self._dops)
            self._ledger = CycleLedger(loopmap)
            self._loop_of = loopmap.loop_of
            self.telemetry.ledger = self._ledger
        self.ieu = _Unit("IEU", "r")
        self.feu = _Unit("FEU", "f")
        self.units = {"IEU": self.ieu, "FEU": self.feu}
        self.in_fifos = {
            ("r", 0): InFifo(fifo_capacity, "r0"),
            ("r", 1): InFifo(fifo_capacity, "r1"),
            ("f", 0): InFifo(fifo_capacity, "f0"),
            ("f", 1): InFifo(fifo_capacity, "f1"),
        }
        self.out_fifos = {
            ("r", 0): OutFifo(fifo_capacity, "r0.out"),
            ("r", 1): OutFifo(fifo_capacity, "r1.out"),
            ("f", 0): OutFifo(fifo_capacity, "f0.out"),
            ("f", 1): OutFifo(fifo_capacity, "f1.out"),
        }
        #: dispatch-order consumers of each output FIFO:
        #: ('store', [addr_or_None], width, fp) or ('stream', state)
        self.out_claims: dict[tuple, deque] = {key: deque()
                                               for key in self.out_fifos}
        self.streams: dict[tuple, _StreamState] = {}
        #: next stream activation sequence number (dispatch order)
        self._stream_seq = 0
        #: stream-instruction dispatch vs activation generations per FIFO,
        #: so a JNI never consults a stale stream from an earlier loop
        self._dispatch_gen: dict[tuple, int] = {}
        self._activate_gen: dict[tuple, int] = {}
        self.store_buffer: deque = deque()  # entries share out_claims refs
        self.cycle = 0
        self.dispatched = 0
        self.stream_elements = 0
        self._progress_cycle = 0
        # bootstrap
        self.pc = self.program.entry_index
        self.ieu.regs[29] = (mem_size - 64) & ~0xF
        self.ieu.regs[30] = HALT_PC
        self.halted = False
        #: superop / fast-forward engine — plain fast runs only.
        #: Telemetry, profile and fault runs observe per-cycle state, so
        #: they never consult the fused closures (decode-cache keying:
        #: the plan cache marks dops, but only _run_fast reads the mark
        #: through an engine).
        self._ff = None
        self._ff_pending = None
        if superops and not self.slow and self.telemetry is None:
            cache = superop_cache_for(self)
            if cache is not None:
                self._ff = FFEngine(self, cache, advance=fast_forward)

    # ------------------------------------------------------------------ run --
    def run(self) -> SimResult:
        try:
            if self.slow:
                self._run_reference()
            elif self.telemetry is None:
                self._run_fast()
            elif self._ledger is not None:
                self._run_fast_profile()
            else:
                self._run_fast_telemetry()
        except FifoError as exc:
            # Surface FIFO capacity/protocol violations with the machine
            # state attached (kind 'fifo-overflow' / 'fifo-underflow' /
            # 'fifo-protocol'): the structured report is what the fault
            # harness and reproducer bundles key on.
            raise SimError(
                f"FIFO violation at cycle {self.cycle}: {exc}",
                kind=f"fifo-{exc.kind}", cycle=self.cycle, pc=self.pc,
                queues=self._queue_snapshot(), fifo=exc.fifo,
                capacity=exc.capacity) from exc
        return self._finish()

    def _queue_snapshot(self) -> dict:
        return {"IEU": len(self.ieu.queue), "FEU": len(self.feu.queue)}

    def _raise_cycle_limit(self) -> None:
        instr = self.program.instrs[self.pc] \
            if 0 <= self.pc < len(self.program.instrs) else None
        raise SimError(
            f"cycle limit exceeded at cycle {self.cycle} "
            f"(max_cycles={self.max_cycles}): pc={self.pc}"
            + (f" ({instr!r})" if instr is not None else "")
            + f", IEU queue={len(self.ieu.queue)}, "
            f"FEU queue={len(self.feu.queue)}",
            kind="cycle-limit", cycle=self.cycle, pc=self.pc,
            queues=self._queue_snapshot(), max_cycles=self.max_cycles)

    def _raise_deadlock(self) -> None:
        raise SimError(
            f"deadlock at cycle {self.cycle}: pc={self.pc}, "
            f"IEU queue={len(self.ieu.queue)}, "
            f"FEU queue={len(self.feu.queue)}",
            kind="deadlock", cycle=self.cycle, pc=self.pc,
            queues=self._queue_snapshot(), horizon=10_000,
            last_progress=self._progress_cycle)

    def _run_reference(self) -> None:
        """The original cycle loop: every cycle ticked, instructions
        interpreted from their RTL form.  Kept as the correctness
        reference for the decoded fast path (and as the only loop that
        supports fault injection — every cycle is observed)."""
        tel = self.telemetry
        faults = self.fault_plan
        while not self.halted:
            self.cycle += 1
            if self.cycle > self.max_cycles:
                self._raise_cycle_limit()
            if faults is not None:
                faults.apply(self, self.cycle)
            self.memory.begin_cycle()
            self.memory.tick(self.cycle)
            self._tick_store_buffer()
            self._tick_scu()
            if tel is None:
                self._tick_unit(self.feu)
                self._tick_unit(self.ieu)
            else:
                self._sample_telemetry(tel)
            self._tick_ifu()
            self._check_done()
            if self.cycle - self._progress_cycle > 10_000:
                self._raise_deadlock()

    def _finish(self) -> SimResult:
        if self._ff is not None:
            # Break the engine<->simulator reference cycle so a finished
            # run is reclaimed by refcounting alone; leaving it cyclic
            # feeds the GC ~350 objects per run, and the resulting
            # collection pauses dominate short-simulation timings.
            self._ff.sim = None
            self._ff = None
        tel = self.telemetry
        if tel is not None:
            tel.cycles = self.cycle
            tel.mem_regions = self.memory.region_stats or {}
            for key, fifo in self.in_fifos.items():
                tel.fifo(fifo.name, fifo.capacity).high_water = \
                    fifo.high_water
            for key, fifo in self.out_fifos.items():
                tel.fifo(fifo.name, fifo.capacity).high_water = \
                    fifo.high_water
        ret_int = self.ieu.regs[2]
        view = SimMemoryView(self.memory.data, self.memory.data_end)
        # The view now owns the backing buffer: recycle it into the
        # memory-system pool once the result itself is garbage.
        weakref.finalize(view, _pool_release, self.memory.size,
                         self.memory.data, self.memory._dirty)
        return SimResult(
            value=ret_int,
            cycles=self.cycle,
            instructions=self.dispatched,
            unit_instructions={"IEU": self.ieu.executed,
                               "FEU": self.feu.executed},
            memory_reads=self.memory.reads,
            memory_writes=self.memory.writes,
            stream_elements=self.stream_elements,
            memory=view,
            globals_base=dict(self.memory.globals_base),
            telemetry=tel,
        )

    # ----------------------------------------------------------- fast path --
    #
    # The fast loops run the pre-decoded program (repro.sim.decode) and
    # fast-forward over stalls.  Soundness of the skip: a cycle in which
    # *nothing* changed (no memory delivery, no _progress, no PC motion,
    # no bypass activity) leaves the machine in exactly the state it
    # started in, so every following cycle is identical until the next
    # clock-sensitive event — a memory completion coming due or a
    # multi-cycle operation retiring.  The clock can therefore jump to
    # min(next event, deadlock horizon, cycle limit); clamping to the
    # latter two makes the error paths raise at the same cycle with the
    # same message as the ticked reference loop.

    def _next_event(self, cycle: int) -> int:
        target = self._progress_cycle + 10_001  # deadlock raise cycle
        due = self.memory.next_due()
        if due is not None and due < target:
            target = due
        feu = self.feu
        if feu.queue and cycle < feu.busy_until < target:
            target = feu.busy_until
        ieu = self.ieu
        if ieu.queue and cycle < ieu.busy_until < target:
            target = ieu.busy_until
        limit = self.max_cycles + 1  # cycle-limit raise cycle
        if limit < target:
            target = limit
        return target

    def _run_fast(self) -> None:
        memory = self.memory
        feu = self.feu
        ieu = self.ieu
        store_buffer = self.store_buffer
        streams = self.streams
        max_cycles = self.max_cycles
        while not self.halted:
            cycle = self.cycle + 1
            self.cycle = cycle
            if cycle > max_cycles:
                self._raise_cycle_limit()
            memory._accepted_this_cycle = 0
            delivered = memory.tick(cycle)
            self._activity = False
            if store_buffer:
                self._tick_store_buffer()
            if streams:
                self._tick_scu_fast()
            if feu.queue:
                self._tick_unit_fast(feu)
            if ieu.queue:
                self._tick_unit_fast(ieu)
            pc_before = self.pc
            self._tick_ifu_fast()
            self._check_done()
            if cycle - self._progress_cycle > 10_000:
                self._raise_deadlock()
            if self._ff_pending is not None:
                # Taken JNI back edge of a superop-compiled loop: offer
                # the boundary to the fast-forward engine.  A boundary
                # cycle always made progress, so continuing is what the
                # skip logic below would do anyway.
                plan = self._ff_pending
                self._ff_pending = None
                self._ff.on_boundary(plan)
                continue
            if self.halted or delivered or \
                    self._progress_cycle == cycle or self._activity or \
                    self.pc != pc_before:
                continue
            target = self._next_event(cycle)
            if target > cycle + 1:
                self.cycle = target - 1

    def _run_fast_telemetry(self) -> None:
        """The fast loop with per-cycle attribution.  The satellite
        bookkeeping is hoisted out of the loop (stats objects, FIFO
        pairings); skipped cycles are attributed in bulk with the
        statuses of the skip-initiating cycle, which an inactive machine
        reproduces verbatim every cycle."""
        tel = self.telemetry
        memory = self.memory
        feu = self.feu
        ieu = self.ieu
        store_buffer = self.store_buffer
        streams = self.streams
        max_cycles = self.max_cycles
        feu_stats = tel.units["FEU"]
        ieu_stats = tel.units["IEU"]
        in_pairs = [(fifo, tel.fifo(fifo.name, fifo.capacity))
                    for fifo in self.in_fifos.values()]
        out_pairs = [(fifo, tel.fifo(fifo.name, fifo.capacity))
                     for fifo in self.out_fifos.values()]
        while not self.halted:
            cycle = self.cycle + 1
            self.cycle = cycle
            if cycle > max_cycles:
                self._raise_cycle_limit()
            memory._accepted_this_cycle = 0
            delivered = memory.tick(cycle)
            self._activity = False
            if store_buffer:
                self._tick_store_buffer()
            if streams:
                self._tick_scu_fast()
            self._stall_reason = None
            feu_status = self._tick_unit_fast(feu)
            feu_reason = self._stall_reason
            self._stall_reason = None
            ieu_status = self._tick_unit_fast(ieu)
            ieu_reason = self._stall_reason
            feu_stats.record(feu_status, feu_reason)
            ieu_stats.record(ieu_status, ieu_reason)
            if self._scu_active:
                tel.scu_busy_cycles += 1
                self._scu_active = False
            mem_busy = bool(memory._inflight)
            if mem_busy:
                tel.mem_busy_cycles += 1
            for fifo, stats in in_pairs:
                stats.sample(fifo.buffered())
            for fifo, stats in out_pairs:
                stats.sample(fifo.available())
            pc_before = self.pc
            self._tick_ifu_fast()
            self._check_done()
            if cycle - self._progress_cycle > 10_000:
                self._raise_deadlock()
            if self.halted or delivered or \
                    self._progress_cycle == cycle or self._activity or \
                    self.pc != pc_before:
                continue
            target = self._next_event(cycle)
            if target > cycle + 1:
                skipped = target - 1 - cycle
                feu_stats.record_many(feu_status, feu_reason, skipped)
                ieu_stats.record_many(ieu_status, ieu_reason, skipped)
                if mem_busy:
                    tel.mem_busy_cycles += skipped
                for fifo, stats in in_pairs:
                    stats.sample_many(fifo.buffered(), skipped)
                for fifo, stats in out_pairs:
                    stats.sample_many(fifo.available(), skipped)
                self.cycle = target - 1

    def _run_fast_profile(self) -> None:
        """The fast telemetry loop plus the cycle ledger.  A separate
        copy (rather than branches inside _run_fast_telemetry /
        _tick_ifu_fast) so the profiling-disabled paths stay untouched
        — the <5% overhead gate in benchmarks/bench_obs.py covers them.

        Attribution point: after the unit ticks, before the IFU tick —
        the same point _sample_telemetry uses on the reference loop, so
        the loop id (from the pre-IFU pc) and every cause are computed
        from identical machine state on both paths.  A skipped window
        replays the initiating cycle's charges in bulk; nothing moves
        during a skip (no retire, no SCU transfer, no FIFO level or pc
        change), so the per-cycle charges of the reference loop are the
        same constants.
        """
        tel = self.telemetry
        ledger = self._ledger
        loop_of = self._loop_of
        memory = self.memory
        feu = self.feu
        ieu = self.ieu
        store_buffer = self.store_buffer
        streams = self.streams
        max_cycles = self.max_cycles
        feu_stats = tel.units["FEU"]
        ieu_stats = tel.units["IEU"]
        in_pairs = [(fifo, tel.fifo(fifo.name, fifo.capacity))
                    for fifo in self.in_fifos.values()]
        out_pairs = [(fifo, tel.fifo(fifo.name, fifo.capacity))
                     for fifo in self.out_fifos.values()]
        while not self.halted:
            cycle = self.cycle + 1
            self.cycle = cycle
            if cycle > max_cycles:
                self._raise_cycle_limit()
            memory._accepted_this_cycle = 0
            delivered = memory.tick(cycle)
            self._activity = False
            if store_buffer:
                self._tick_store_buffer()
            if streams:
                self._tick_scu_fast()
            feu_exec = feu.executed
            ieu_exec = ieu.executed
            self._stall_reason = None
            feu_status = self._tick_unit_fast(feu)
            feu_reason = self._stall_reason
            self._stall_reason = None
            ieu_status = self._tick_unit_fast(ieu)
            ieu_reason = self._stall_reason
            feu_stats.record(feu_status, feu_reason)
            ieu_stats.record(ieu_status, ieu_reason)
            scu_active = self._scu_active
            if scu_active:
                tel.scu_busy_cycles += 1
                self._scu_active = False
            mem_busy = bool(memory._inflight)
            if mem_busy:
                tel.mem_busy_cycles += 1
            for fifo, stats in in_pairs:
                stats.sample(fifo.buffered())
            for fifo, stats in out_pairs:
                stats.sample(fifo.available())
            pc_before = self.pc
            lid = loop_of[pc_before] if pc_before >= 0 else 0
            feu_cause = self._unit_cause(
                feu_status, feu_reason, feu.executed - feu_exec)
            ieu_cause = self._unit_cause(
                ieu_status, ieu_reason, ieu.executed - ieu_exec)
            scu_cause = "execute" if scu_active else self._scu_cause()
            ledger.charge("FEU", lid, feu_cause)
            ledger.charge("IEU", lid, ieu_cause)
            ledger.charge("SCU", lid, scu_cause)
            for fifo, stats in in_pairs:
                ledger.track_fifo(fifo.name, cycle, fifo.buffered())
            for fifo, stats in out_pairs:
                ledger.track_fifo(fifo.name, cycle, fifo.available())
            self._tick_ifu_profile()
            self._check_done()
            if cycle - self._progress_cycle > 10_000:
                self._raise_deadlock()
            if self.halted or delivered or \
                    self._progress_cycle == cycle or self._activity or \
                    self.pc != pc_before:
                continue
            target = self._next_event(cycle)
            if target > cycle + 1:
                skipped = target - 1 - cycle
                feu_stats.record_many(feu_status, feu_reason, skipped)
                ieu_stats.record_many(ieu_status, ieu_reason, skipped)
                if mem_busy:
                    tel.mem_busy_cycles += skipped
                for fifo, stats in in_pairs:
                    stats.sample_many(fifo.buffered(), skipped)
                for fifo, stats in out_pairs:
                    stats.sample_many(fifo.available(), skipped)
                ledger.charge("FEU", lid, feu_cause, skipped)
                ledger.charge("IEU", lid, ieu_cause, skipped)
                ledger.charge("SCU", lid, scu_cause, skipped)
                self.cycle = target - 1

    def _unit_cause(self, status: str, reason: Optional[str],
                    retired: int) -> str:
        """Ledger cause for one unit-cycle, from the tick's status."""
        if status == "busy":
            return "execute" if retired else "unit-busy"
        if status == "stall":
            return _STALL_CAUSE.get(reason, "unit-busy")
        # Idle: classify by what the IFU is blocked on at this pc.
        pc = self.pc
        if pc == HALT_PC:
            return "drain"
        kind = self._dops[pc].kind
        if kind == K_CONDJUMP or kind == K_JNI:
            return "branch"
        if kind == K_RET:
            return "drain"
        return "idle"

    def _scu_cause(self) -> str:
        """Ledger cause for an SCU cycle with no transfer: what the
        first active stream is blocked on (pure function of machine
        state, so the fast path's bulk replay matches the reference
        loop's per-cycle recomputation over a frozen window)."""
        for state in self.streams.values():
            if not state.active:
                continue
            key = (state.bank, state.index)
            if state.kind == "in":
                if state.remaining is not None and state.remaining <= 0:
                    return "memory-latency"  # draining in-flight reads
                fifo = self.in_fifos[key]
                if fifo.buffered() + state.inflight >= fifo.capacity:
                    return "fifo-full"
                return "memory-latency"
            claims = self.out_claims[key]
            if claims and (claims[0][0] != "stream" or
                           claims[0][1] is not state):
                return "memory-latency"  # behind an older scalar store
            if not self.out_fifos[key].available():
                return "fifo-empty"
            return "memory-latency"
        return "drain" if self.pc == HALT_PC else "idle"

    def _note_back_edge(self, target: int) -> None:
        """Record one loop iteration when the IFU takes a back edge."""
        lid = self._loop_of[target]
        if lid and self._ledger.loopmap.loops[lid].header == target:
            inflight = self.memory._inflight
            self._ledger.note_iteration(
                lid, self.cycle,
                len(self.ieu.queue) + len(self.feu.queue),
                sum(f._buffered for f in self.in_fifos.values())
                + sum(f.available() for f in self.out_fifos.values()),
                inflight[0][0] - self.cycle if inflight else -1)

    def _tick_ifu_profile(self) -> None:
        """_tick_ifu_fast plus back-edge iteration recording — a copy so
        the non-profiled fast paths keep their unconditional hot loop."""
        dops = self._dops
        pc = self.pc
        for _ in range(64):  # bounded chain of free control instructions
            if pc == HALT_PC:
                self.pc = pc
                return
            d = dops[pc]
            kind = d.kind
            if kind == K_EXEC:
                target = self.feu if d.feu else self.ieu
                if len(target.queue) >= target.queue_size:
                    self.pc = pc
                    return
                key = d.stream_key
                if key is not None:
                    self._dispatch_gen[key] = \
                        self._dispatch_gen.get(key, 0) + 1
                target.queue.append(d)
                self.pc = pc + 1
                self.dispatched += 1
                self._progress_cycle = self.cycle
                return
            if kind == K_LABEL:
                pc += 1
                continue
            if kind == K_JUMP:
                if d.target <= pc:
                    self._note_back_edge(d.target)
                pc = d.target
                self._progress_cycle = self.cycle
                continue
            if kind == K_CONDJUMP:
                producer = self.feu if d.feu else self.ieu
                if not producer.cc_fifo:
                    self.pc = pc
                    return  # stall: wait for the compare result
                flag = producer.cc_fifo.popleft()
                self._progress_cycle = self.cycle
                if flag == d.sense:
                    if d.target <= pc:
                        self._note_back_edge(d.target)
                    pc = d.target
                else:
                    pc = pc + 1
                continue
            if kind == K_JNI:
                key = d.key
                if self._activate_gen.get(key, 0) < \
                        self._dispatch_gen.get(key, 0):
                    self.pc = pc
                    return  # stall: the current stream is not active yet
                state = self.streams.get(key)
                if state is None or state.jni_counter is None:
                    self.pc = pc
                    return  # stall until the stream is activated
                state.jni_counter -= 1
                self._progress_cycle = self.cycle
                if state.jni_counter > 0:
                    if d.target <= pc:
                        self._note_back_edge(d.target)
                    pc = d.target
                else:
                    pc = pc + 1
                continue
            if kind == K_CALL:
                ieu = self.ieu
                if len(ieu.queue) >= ieu.queue_size:
                    self.pc = pc
                    return
                ieu.queue.append(("link", pc + 1))
                self.pc = d.target
                self.dispatched += 1
                self._progress_cycle = self.cycle
                return  # dispatching the link write uses the cycle
            if kind == K_RET:
                if self.ieu.queue or self.memory.busy() or \
                        self.store_buffer:
                    self.pc = pc
                    return
                pc = self.ieu.regs[30]
                self._progress_cycle = self.cycle
                continue
            # K_CVT: synchronize the execution units, then convert.
            if self.ieu.queue or self.feu.queue:
                self.pc = pc
                return
            src_unit = self.feu if d.d2i else self.ieu
            in_fifos = self.in_fifos
            ready = True
            for fkey, count in d.needs:
                if in_fifos[fkey].available() < count:
                    ready = False
                    break
            if not ready:
                self.pc = pc
                return  # FIFO operand has not arrived yet
            fifo_key = d.fifo_key
            if fifo_key is not None and \
                    not self.out_fifos[fifo_key].has_room():
                self.pc = pc
                return
            raw = d.ev(src_unit, self)
            if d.d2i:
                try:
                    value = wrap32(int(raw))
                except (OverflowError, ValueError) as exc:
                    raise SimError(f"d2i conversion trap: {exc}") from exc
            else:
                value = float(raw)
            if fifo_key is not None:
                self.out_fifos[fifo_key].push(value)
            elif d.dst_bank is not None:
                if d.dst_bank == "f":
                    self.feu.regs[d.dst_index] = float(value)
                else:
                    self.ieu.regs[d.dst_index] = wrap32(int(value))
            self.pc = pc + 1
            self.dispatched += 1
            self._progress_cycle = self.cycle
            return
        self.pc = pc

    def _tick_ifu_fast(self) -> None:
        """Decoded-program IFU: same protocol as _tick_ifu, driven by
        DOp opcodes instead of isinstance chains."""
        dops = self._dops
        pc = self.pc
        for _ in range(64):  # bounded chain of free control instructions
            if pc == HALT_PC:
                self.pc = pc
                return
            d = dops[pc]
            kind = d.kind
            if kind == K_EXEC:
                target = self.feu if d.feu else self.ieu
                if len(target.queue) >= target.queue_size:
                    self.pc = pc
                    return
                key = d.stream_key
                if key is not None:
                    self._dispatch_gen[key] = \
                        self._dispatch_gen.get(key, 0) + 1
                target.queue.append(d)
                self.pc = pc + 1
                self.dispatched += 1
                self._progress_cycle = self.cycle
                return
            if kind == K_LABEL:
                pc += 1
                continue
            if kind == K_JUMP:
                pc = d.target
                self._progress_cycle = self.cycle
                continue
            if kind == K_CONDJUMP:
                producer = self.feu if d.feu else self.ieu
                if not producer.cc_fifo:
                    self.pc = pc
                    return  # stall: wait for the compare result
                flag = producer.cc_fifo.popleft()
                self._progress_cycle = self.cycle
                pc = d.target if flag == d.sense else pc + 1
                continue
            if kind == K_JNI:
                key = d.key
                if self._activate_gen.get(key, 0) < \
                        self._dispatch_gen.get(key, 0):
                    self.pc = pc
                    return  # stall: the current stream is not active yet
                state = self.streams.get(key)
                if state is None or state.jni_counter is None:
                    self.pc = pc
                    return  # stall until the stream is activated
                state.jni_counter -= 1
                self._progress_cycle = self.cycle
                if state.jni_counter > 0:
                    pc = d.target
                    if d.ff is not None and self._ff is not None:
                        # boundary offered to the fast-forward engine
                        # once this cycle's IFU tick completes
                        self._ff_pending = d.ff
                else:
                    pc = pc + 1
                continue
            if kind == K_CALL:
                ieu = self.ieu
                if len(ieu.queue) >= ieu.queue_size:
                    self.pc = pc
                    return
                ieu.queue.append(("link", pc + 1))
                self.pc = d.target
                self.dispatched += 1
                self._progress_cycle = self.cycle
                return  # dispatching the link write uses the cycle
            if kind == K_RET:
                if self.ieu.queue or self.memory.busy() or \
                        self.store_buffer:
                    self.pc = pc
                    return
                pc = self.ieu.regs[30]
                self._progress_cycle = self.cycle
                continue
            # K_CVT: synchronize the execution units, then convert.
            if self.ieu.queue or self.feu.queue:
                self.pc = pc
                return
            src_unit = self.feu if d.d2i else self.ieu
            in_fifos = self.in_fifos
            ready = True
            for fkey, count in d.needs:
                if in_fifos[fkey].available() < count:
                    ready = False
                    break
            if not ready:
                self.pc = pc
                return  # FIFO operand has not arrived yet
            fifo_key = d.fifo_key
            if fifo_key is not None and \
                    not self.out_fifos[fifo_key].has_room():
                self.pc = pc
                return
            raw = d.ev(src_unit, self)
            if d.d2i:
                try:
                    value = wrap32(int(raw))
                except (OverflowError, ValueError) as exc:
                    raise SimError(f"d2i conversion trap: {exc}") from exc
            else:
                value = float(raw)
            if fifo_key is not None:
                self.out_fifos[fifo_key].push(value)
            elif d.dst_bank is not None:
                if d.dst_bank == "f":
                    self.feu.regs[d.dst_index] = float(value)
                else:
                    self.ieu.regs[d.dst_index] = wrap32(int(value))
            self.pc = pc + 1
            self.dispatched += 1
            self._progress_cycle = self.cycle
            return
        self.pc = pc

    def _tick_unit_fast(self, unit: _Unit) -> str:
        if not unit.queue:
            return "idle"
        if self.cycle < unit.busy_until:
            return "busy"  # occupied by a multi-cycle operation
        head = unit.queue[0]
        if type(head) is tuple:  # ("link", return_pc)
            unit.regs[30] = head[1]
            unit.queue.popleft()
            unit.executed += 1
            self._progress_cycle = self.cycle
            return "busy"
        if self._execute_fast(unit, head):
            unit.queue.popleft()
            unit.executed += 1
            self._progress_cycle = self.cycle
            return "busy"
        return "stall"

    def _execute_fast(self, unit: _Unit, d) -> bool:
        """Decoded execute; mirrors _execute stall-for-stall."""
        ekind = d.ekind
        in_fifos = self.in_fifos
        if ekind == E_ASSIGN:
            for key, count in d.needs:
                if in_fifos[key].available() < count:
                    return self._stall("operand-wait")
            fifo_key = d.fifo_key
            if fifo_key is not None:
                out = self.out_fifos[fifo_key]
                if len(out._data) >= out.capacity:
                    return self._stall("output-full")
                value = d.ev(unit, self)
                extra = d.busy_extra
                if extra:
                    unit.busy_until = self.cycle + extra
                out.push(value)
                return True
            value = d.ev(unit, self)
            extra = d.busy_extra
            if extra:
                unit.busy_until = self.cycle + extra
            bank = d.dst_bank
            if bank is not None:
                if bank == "f":
                    self.feu.regs[d.dst_index] = float(value)
                else:
                    self.ieu.regs[d.dst_index] = wrap32(int(value))
            return True
        if ekind == E_LOAD:
            needs = d.needs
            for key, count in needs:
                if in_fifos[key].available() < count:
                    return self._stall("operand-wait")
            if not self.memory.can_accept():
                return self._stall("memory-port")
            addr = d.ev(unit, self)
            if self._store_conflict(addr, d.width):
                if needs:
                    self._activity = True  # the address pop consumed state
                return self._stall("store-conflict")
            if self._out_stream_conflict(addr, d.width):
                # an output stream has not written this yet
                if needs:
                    self._activity = True
                return self._stall("stream-drain")
            fifo = in_fifos[d.fifo_key]
            reservation = fifo.reserve(1, tag="load")
            ok = self.memory.request_read(
                self.cycle, addr, d.width, d.fp, d.signed,
                reservation.deliver)
            assert ok
            return True
        if ekind == E_STORE:
            for key, count in d.needs:
                if in_fifos[key].available() < count:
                    return self._stall("operand-wait")
            addr = d.ev(unit, self)
            fifo_key = d.fifo_key
            claim = ["store", addr, d.width, d.fp]
            self.out_claims[fifo_key].append(claim)
            self.store_buffer.append((fifo_key, claim))
            return True
        if ekind == E_COMPARE:
            if len(unit.cc_fifo) >= 8:
                return self._stall("cc-full")
            for key, count in d.needs:
                if in_fifos[key].available() < count:
                    return self._stall("operand-wait")
            unit.cc_fifo.append(d.ev(unit, self))
            return True
        if ekind == E_SIN or ekind == E_SOUT:
            base = d.ev(unit, self)
            count = None
            if d.ev2 is not None:
                count = d.ev2(unit, self)
                if count <= 0:
                    raise SimError(
                        f"stream with non-positive count {count}")
            self._activate_stream_with(
                d.instr, "in" if ekind == E_SIN else "out", base, count)
            return True
        if ekind == E_SSTOP:
            state = self.streams.get(d.key)
            if state is not None and state.active:
                if state.reservation is not None:
                    state.reservation.close()
                state.active = False
                state.remaining = 0
            return True
        raise SimError(f"unit {unit.name} cannot execute {d.instr!r}")

    def _sample_telemetry(self, tel: SimTelemetry) -> None:
        """Telemetry-mode unit tick + per-cycle sampling.  Performs the
        exact same unit ticks as the fast path; only the bookkeeping
        around them differs.  When profiling, also charges the cycle
        ledger — at the same pre-IFU attribution point the fast profile
        loop uses, so both paths see identical machine state."""
        ledger = self._ledger
        feu_exec = self.feu.executed
        ieu_exec = self.ieu.executed
        self._stall_reason = None
        feu_status = self._tick_unit(self.feu)
        feu_reason = self._stall_reason
        self._stall_reason = None
        ieu_status = self._tick_unit(self.ieu)
        ieu_reason = self._stall_reason
        tel.units["FEU"].record(feu_status, feu_reason)
        tel.units["IEU"].record(ieu_status, ieu_reason)
        scu_active = self._scu_active
        if scu_active:
            tel.scu_busy_cycles += 1
            self._scu_active = False
        if self.memory.busy():
            tel.mem_busy_cycles += 1
        for key, fifo in self.in_fifos.items():
            tel.fifo(fifo.name, fifo.capacity).sample(fifo.buffered())
        for key, fifo in self.out_fifos.items():
            tel.fifo(fifo.name, fifo.capacity).sample(fifo.available())
        if ledger is not None:
            pc = self.pc
            lid = self._loop_of[pc] if pc >= 0 else 0
            ledger.charge("FEU", lid, self._unit_cause(
                feu_status, feu_reason, self.feu.executed - feu_exec))
            ledger.charge("IEU", lid, self._unit_cause(
                ieu_status, ieu_reason, self.ieu.executed - ieu_exec))
            ledger.charge("SCU", lid,
                          "execute" if scu_active else self._scu_cause())
            cycle = self.cycle
            for key, fifo in self.in_fifos.items():
                ledger.track_fifo(fifo.name, cycle, fifo.buffered())
            for key, fifo in self.out_fifos.items():
                ledger.track_fifo(fifo.name, cycle, fifo.available())

    def _progress(self) -> None:
        self._progress_cycle = self.cycle

    def _check_done(self) -> None:
        if self.pc != HALT_PC:
            return
        if self.ieu.queue or self.feu.queue:
            return
        if self.memory.busy() or self.store_buffer:
            return
        for state in self.streams.values():
            if state.active and state.kind == "out" and \
                    state.remaining not in (None, 0):
                return
        self.halted = True

    # ---------------------------------------------------------------- IFU --
    def _tick_ifu(self) -> None:
        # The IFU processes control instructions for free and dispatches
        # at most one execution-unit instruction per cycle.
        for _ in range(64):  # bounded chain of free control instructions
            if self.pc == HALT_PC:
                return
            instr = self.program.instrs[self.pc]
            unit = unit_of(instr)
            if isinstance(instr, Label):
                self.pc += 1
                continue
            if isinstance(instr, Jump):
                target = self.program.label_index[instr.target]
                if self._ledger is not None and target <= self.pc:
                    self._note_back_edge(target)
                self.pc = target
                self._progress()
                continue
            if isinstance(instr, CondJump):
                producer = self.feu if instr.bank == "f" else self.ieu
                if not producer.cc_fifo:
                    return  # stall: wait for the compare result
                flag = producer.cc_fifo.popleft()
                self._progress()
                if flag == instr.sense:
                    target = self.program.label_index[instr.target]
                    if self._ledger is not None and target <= self.pc:
                        self._note_back_edge(target)
                    self.pc = target
                else:
                    self.pc += 1
                continue
            if isinstance(instr, JumpStreamNotDone):
                key = (instr.fifo.bank, instr.fifo.index, instr.kind)
                if self._activate_gen.get(key, 0) < \
                        self._dispatch_gen.get(key, 0):
                    return  # stall: the current stream is not active yet
                state = self.streams.get(key)
                if state is None or state.jni_counter is None:
                    return  # stall until the stream is activated
                state.jni_counter -= 1
                self._progress()
                if state.jni_counter > 0:
                    target = self.program.label_index[instr.target]
                    if self._ledger is not None and target <= self.pc:
                        self._note_back_edge(target)
                    self.pc = target
                else:
                    self.pc += 1
                continue
            if isinstance(instr, Call):
                # The link-register write is performed by the IEU so the
                # register file stays single-writer.
                if self.ieu.queue_full():
                    return
                self.ieu.queue.append(("link", self.pc + 1))
                self.pc = self.program.entry_of[instr.func]
                self.dispatched += 1
                self._progress()
                return  # dispatching the link write uses the cycle
            if isinstance(instr, Ret):
                # Requires the IEU to be drained so r30 is final.
                if self.ieu.queue or self.memory.busy() or \
                        self.store_buffer:
                    return
                self.pc = self.ieu.regs[30]
                self._progress()
                continue
            if unit == "CVT":
                if self.ieu.queue or self.feu.queue:
                    return  # synchronize the execution units
                src_unit = self.feu if isinstance(instr.src, UnOp) and \
                    instr.src.op == "d2i" else self.ieu
                if not self._operands_ready(src_unit, [instr.src.operand]):
                    return  # FIFO operand has not arrived yet
                dst = instr.dst
                if isinstance(dst, Reg) and dst.index in (0, 1) and \
                        not self.out_fifos[(dst.bank, dst.index)].has_room():
                    return
                self._exec_cvt(instr)
                self.pc += 1
                self.dispatched += 1
                self._progress()
                return
            # Ordinary execution-unit instruction: dispatch.
            target = self.feu if self._dispatch_unit(instr) == "FEU" \
                else self.ieu
            if target.queue_full():
                return
            if isinstance(instr, (StreamIn, StreamOut)):
                kind = "in" if isinstance(instr, StreamIn) else "out"
                key = (instr.fifo.bank, instr.fifo.index, kind)
                self._dispatch_gen[key] = self._dispatch_gen.get(key, 0) + 1
            target.queue.append(("instr", instr))
            self.pc += 1
            self.dispatched += 1
            self._progress()
            return

    def _dispatch_unit(self, instr: Instr) -> str:
        unit = unit_of(instr)
        if unit == "SCU":
            # Stream instructions read integer registers: executed by the
            # IEU in order, which then activates the SCU.
            return "IEU"
        return unit

    def _exec_cvt(self, instr: Assign) -> None:
        src = instr.src
        assert isinstance(src, UnOp)
        if src.op == "i2d":
            value = float(self._read_reg(self.ieu, src.operand))
        else:  # d2i
            try:
                value = wrap32(int(self._read_reg(self.feu, src.operand)))
            except (OverflowError, ValueError) as exc:
                raise SimError(f"d2i conversion trap: {exc}") from exc
        dst = instr.dst
        if isinstance(dst, Reg) and dst.index in (0, 1):
            self.out_fifos[(dst.bank, dst.index)].push(value)
        else:
            self._write_reg(self.feu if src.op == "i2d" else self.ieu,
                            dst, value)

    # -------------------------------------------------------------- units --
    def _tick_unit(self, unit: _Unit) -> str:
        """Advance one unit a cycle; the returned status ("idle", "busy"
        or "stall") feeds the telemetry attribution and is ignored on
        the fast path."""
        if not unit.queue:
            return "idle"
        if self.cycle < unit.busy_until:
            return "busy"  # occupied by a multi-cycle operation
        kind, payload = unit.queue[0]
        if kind == "link":
            unit.regs[30] = payload
            unit.queue.popleft()
            unit.executed += 1
            self._progress()
            return "busy"
        instr: Instr = payload
        if self._execute(unit, instr):
            unit.queue.popleft()
            unit.executed += 1
            self._progress()
            return "busy"
        return "stall"

    def _stall(self, reason: str) -> bool:
        """Record why the current instruction could not execute (read by
        the telemetry sampler) and report the stall."""
        self._stall_reason = reason
        return False

    def _execute(self, unit: _Unit, instr: Instr) -> bool:
        """Try to execute; False = stall (retry next cycle)."""
        if isinstance(instr, Compare):
            if len(unit.cc_fifo) >= 8:
                return self._stall("cc-full")
            if not self._operands_ready(unit, [instr.left, instr.right]):
                return self._stall("operand-wait")
            left = self._eval(unit, instr.left)
            right = self._eval(unit, instr.right)
            unit.cc_fifo.append(bool(_CMP[instr.op](left, right)))
            return True
        if isinstance(instr, WMLoadIssue):
            if not self._operands_ready(unit, [instr.addr]):
                return self._stall("operand-wait")
            if not self.memory.can_accept():
                return self._stall("memory-port")
            addr = self._eval(unit, instr.addr)
            if self._store_conflict(addr, instr.width):
                return self._stall("store-conflict")
            if self._out_stream_conflict(addr, instr.width):
                # an output stream has not written this yet
                return self._stall("stream-drain")
            fifo = self.in_fifos[(instr.bank, 0)]
            reservation = fifo.reserve(1, tag="load")
            ok = self.memory.request_read(
                self.cycle, addr, instr.width, instr.fp, instr.signed,
                reservation.deliver)
            assert ok
            return True
        if isinstance(instr, WMStoreIssue):
            if not self._operands_ready(unit, [instr.addr]):
                return self._stall("operand-wait")
            addr = self._eval(unit, instr.addr)
            key = (instr.bank, 0)
            claim = ["store", addr, instr.width, instr.fp]
            self.out_claims[key].append(claim)
            self.store_buffer.append((key, claim))
            return True
        if isinstance(instr, StreamIn):
            return self._activate_stream(unit, instr, "in")
        if isinstance(instr, StreamOut):
            return self._activate_stream(unit, instr, "out")
        if isinstance(instr, StreamStop):
            key = (instr.fifo.bank, instr.fifo.index, instr.kind)
            state = self.streams.get(key)
            if state is not None and state.active:
                if state.reservation is not None:
                    state.reservation.close()
                state.active = False
                state.remaining = 0
            return True
        if isinstance(instr, Assign):
            return self._exec_assign(unit, instr)
        raise SimError(f"unit {unit.name} cannot execute {instr!r}")

    def _exec_assign(self, unit: _Unit, instr: Assign) -> bool:
        dst = instr.dst
        if not self._operands_ready(unit, [instr.src]):
            return self._stall("operand-wait")
        writes_fifo = isinstance(dst, Reg) and dst.index in (0, 1)
        if writes_fifo:
            out = self.out_fifos[(dst.bank, dst.index)]
            if not out.has_room():
                return self._stall("output-full")
        value = self._eval(unit, instr.src)
        cost = self._cost(unit, instr.src)
        if cost > 1:
            unit.busy_until = self.cycle + cost - 1
        if isinstance(instr.src, Sym):
            unit.busy_until = self.cycle + 1  # llh + sll pair
        if writes_fifo:
            self.out_fifos[(dst.bank, dst.index)].push(value)
        else:
            self._write_reg(unit, dst, value)
        return True

    def _cost(self, unit: _Unit, expr: Expr) -> int:
        cost = 1
        for op in _iter_ops(expr):
            cost = max(cost, _OP_COST.get((unit.bank, op), 1))
        return cost

    # ------------------------------------------------------------- operands --
    def _operands_ready(self, unit: _Unit, exprs: list[Expr]) -> bool:
        """Are all FIFO reads satisfiable right now (atomically)?"""
        needed: dict[tuple, int] = {}
        for expr in exprs:
            for node in _walk(expr):
                if isinstance(node, Reg) and node.index in (0, 1) and \
                        node.bank == unit.bank:
                    key = (node.bank, node.index)
                    needed[key] = needed.get(key, 0) + 1
        for key, count in needed.items():
            if self.in_fifos[key].available() < count:
                return False
        return True

    def _eval(self, unit: _Unit, expr: Expr):
        if isinstance(expr, Imm):
            return expr.value
        if isinstance(expr, Reg):
            return self._read_reg(unit, expr)
        if isinstance(expr, Sym):
            try:
                return self.memory.globals_base[expr.name] + expr.offset
            except KeyError:
                raise SimError(f"unknown symbol {expr.name!r}") from None
        if isinstance(expr, BinOp):
            left = self._eval(unit, expr.left)
            right = self._eval(unit, expr.right)
            if unit.bank == "f":
                return self._fp_bin(expr.op, left, right)
            return _INT_BIN[expr.op](left, right)
        if isinstance(expr, UnOp):
            operand = self._eval(unit, expr.operand)
            if expr.op == "neg":
                return -operand if isinstance(operand, float) \
                    else wrap32(-operand)
            if expr.op == "not":
                return wrap32(~operand)
            if expr.op == "sext8":
                v = int(operand) & 0xFF
                return v - 0x100 if v >= 0x80 else v
            raise SimError(f"unit cannot evaluate {expr.op}")
        if isinstance(expr, VReg):
            raise SimError("virtual register survived to simulation")
        raise SimError(f"cannot evaluate {expr!r}")

    def _fp_bin(self, op: str, a, b):
        a = float(a)
        b = float(b)
        if op == "+":
            return a + b
        if op == "-":
            return a - b
        if op == "*":
            return a * b
        if op == "/":
            if b == 0.0:
                raise SimError("floating-point division by zero")
            return a / b
        raise SimError(f"illegal FP operator {op}")

    def _read_reg(self, unit: _Unit, reg: Reg):
        if reg.bank != unit.bank:
            raise SimError(
                f"{unit.name} read of cross-bank register {reg!r}")
        if reg.index == 31:
            return 0.0 if unit.bank == "f" else 0
        if reg.index in (0, 1):
            return self.in_fifos[(reg.bank, reg.index)].pop()
        return unit.regs[reg.index]

    def _write_reg(self, unit: _Unit, reg: Reg, value) -> None:
        if reg.index == 31:
            return  # writes to register 31 have no effect
        if reg.bank == "f":
            self.feu.regs[reg.index] = float(value)
        else:
            self.ieu.regs[reg.index] = wrap32(int(value))

    # ---------------------------------------------------------------- SCU --
    def _activate_stream(self, unit: _Unit, instr, kind: str) -> bool:
        base = self._eval(unit, instr.base)
        count = None
        if instr.count is not None:
            count = self._eval(unit, instr.count)
            if count <= 0:
                raise SimError(f"stream with non-positive count {count}")
        return self._activate_stream_with(instr, kind, base, count)

    def _activate_stream_with(self, instr, kind: str, base, count) -> bool:
        key = (instr.fifo.bank, instr.fifo.index, kind)
        fifo_key = (instr.fifo.bank, instr.fifo.index)
        state = _StreamState(kind, instr.fifo.bank, instr.fifo.index)
        state.addr = base
        state.count = count
        state.remaining = count
        state.stride = instr.stride
        state.width = instr.width
        state.fp = instr.fp
        state.active = True
        state.jni_counter = count
        state.seq = self._stream_seq
        self._stream_seq += 1
        if kind == "in":
            state.reservation = self.in_fifos[fifo_key].reserve(
                count, tag=f"stream:{key}")
        else:
            self.out_claims[fifo_key].append(["stream", state])
        self.streams[key] = state
        self._activate_gen[key] = self._activate_gen.get(key, 0) + 1
        if self.telemetry is not None:
            state.stats = StreamStats(
                key=f"{instr.fifo.bank}{instr.fifo.index}", kind=kind,
                start_cycle=self.cycle, base=base, stride=instr.stride,
                width=instr.width, count=count)
            self.telemetry.streams.append(state.stats)
        return True

    def _tick_scu_fast(self) -> None:
        # Same protocol as _tick_scu; stream ticks never add or remove
        # dict entries, so the defensive copy is dropped.
        for state in self.streams.values():
            if not state.active:
                continue
            fifo_key = (state.bank, state.index)
            if state.kind == "in":
                self._tick_stream_in(fifo_key, state)
            else:
                self._tick_stream_out(fifo_key, state)

    def _tick_scu(self) -> None:
        for state in list(self.streams.values()):
            if not state.active:
                continue
            fifo_key = (state.bank, state.index)
            if state.kind == "in":
                self._tick_stream_in(fifo_key, state)
            else:
                self._tick_stream_out(fifo_key, state)

    def _tick_stream_in(self, key, state: _StreamState) -> None:
        if state.remaining is not None and state.remaining <= 0:
            if state.inflight == 0:
                state.active = False
            return
        fifo = self.in_fifos[key]
        if fifo.buffered() + state.inflight >= fifo.capacity:
            return
        if not self.memory.can_accept():
            return
        # Memory-consistency interlocks: the next element must not be
        # covered by an output stream still draining or by a pending
        # (data-incomplete) scalar store.
        if self._out_stream_conflict(state.addr, state.width,
                                     exclude=state, before=state.seq):
            return
        if self._store_conflict(state.addr, state.width):
            return
        reservation = state.reservation
        assert reservation is not None

        def deliver(value, state=state, reservation=reservation):
            state.inflight -= 1
            if reservation.closed:
                return  # stream was stopped; drop late arrivals
            reservation.deliver(value)
            self.stream_elements += 1
            if state.stats is not None:
                state.stats.elements += 1
                state.stats.last_cycle = self.cycle

        try:
            ok = self.memory.request_read(self.cycle, state.addr,
                                          state.width, state.fp, True,
                                          deliver)
        except MemError:
            # An infinite stream may prefetch past the data segment; the
            # compiler guarantees those elements are never consumed.
            if state.remaining is None:
                def deliver_dummy(value, state=state):
                    state.inflight -= 1
                self.memory._accepted_this_cycle += 1
                state.inflight += 1
                state.addr += state.stride
                return
            raise
        if ok:
            state.inflight += 1
            state.addr += state.stride
            if state.remaining is not None:
                state.remaining -= 1
            if self.telemetry is not None:
                self._scu_active = True
            self._progress()

    def _tick_stream_out(self, key, state: _StreamState) -> None:
        if state.remaining is not None and state.remaining <= 0:
            state.active = False
            return
        claims = self.out_claims[key]
        if not claims or claims[0][0] != "stream" or claims[0][1] is not state:
            return
        out = self.out_fifos[key]
        if not out.available():
            return
        if not self.memory.can_accept():
            return
        value = out.pop()
        self.memory.request_write(self.cycle, state.addr, state.width,
                                  state.fp, value)
        self.stream_elements += 1
        if state.stats is not None:
            state.stats.elements += 1
            state.stats.last_cycle = self.cycle
            self._scu_active = True
        state.addr += state.stride
        if state.remaining is not None:
            state.remaining -= 1
            if state.remaining <= 0:
                state.active = False
                claims.popleft()
        self._progress()

    # -------------------------------------------------------- store buffer --
    def _tick_store_buffer(self) -> None:
        """Complete scalar stores whose data has arrived, in order."""
        while self.store_buffer:
            key, claim = self.store_buffer[0]
            claims = self.out_claims[key]
            if not claims or claims[0] is not claim:
                return  # an older stream-out claim is still draining
            out = self.out_fifos[key]
            if not out.available():
                return
            if not self.memory.can_accept():
                return
            value = out.pop()
            _tag, addr, width, fp = claim
            self.memory.request_write(self.cycle, addr, width, fp, value)
            claims.popleft()
            self.store_buffer.popleft()
            self._progress()

    def _store_conflict(self, addr: int, width: int) -> bool:
        """Does a pending (data-incomplete) store overlap [addr, addr+w)?"""
        for _key, claim in self.store_buffer:
            _tag, saddr, swidth, _fp = claim
            if saddr < addr + width and addr < saddr + swidth:
                return True
        return False

    def _out_stream_conflict(self, addr: int, width: int,
                             exclude: Optional[_StreamState] = None,
                             before: Optional[int] = None) -> bool:
        """Does [addr, addr+width) fall inside the not-yet-written range
        of an active output stream?

        This is the memory-consistency interlock between the SCUs and
        the scalar pipeline: reads of a region an output stream is still
        draining must wait until the covering elements are written.

        ``before`` restricts the check to output streams activated
        *earlier* than the given dispatch sequence number.  An input
        stream defers only to out-streams dispatched before it (a flow
        dependence from an earlier loop still draining); an out-stream
        dispatched *after* it sits later in program order — the paper's
        partitioning guarantees no flow dependence within a loop, so
        the in-stream's reads must not wait for it (waiting would both
        invert an anti-dependence and deadlock: the out-stream's data
        comes from the very reads being held up).  Scalar loads pass no
        ``before`` — they issue after every announced stream and defer
        to all of them.
        """
        for state in self.streams.values():
            if state is exclude or state.kind != "out" or not state.active:
                continue
            if before is not None and state.seq > before:
                continue
            remaining = state.remaining
            if not remaining:
                continue
            span = state.stride * (remaining - 1)
            lo = min(state.addr, state.addr + span)
            hi = max(state.addr + state.width,
                     state.addr + span + state.width)
            if lo < addr + width and addr < hi:
                return True
        return False


def _iter_ops(expr: Expr):
    for node in _walk(expr):
        if isinstance(node, BinOp):
            yield node.op


def simulate(module: RtlModule, **kwargs) -> SimResult:
    """Convenience wrapper: build a simulator and run to completion."""
    return WMSimulator(module, **kwargs).run()
