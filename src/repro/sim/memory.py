"""The simulated memory system.

Byte-addressable little-endian memory with the same layout as the IR
reference interpreter (globals from ``DATA_BASE``, downward stack), plus
a simple latency/throughput model:

* a read request accepted at cycle ``c`` delivers its data at
  ``c + latency``;
* at most ``ports`` requests (reads or writes, from the IEU pipeline
  and the stream control units combined) are accepted per cycle;
* IEU memory operations are processed in issue order (total store
  ordering within the scalar pipeline); stream requests are independent
  — the compiler's partition analysis is what guarantees streams never
  race scalar accesses to the same region, and the differential tests
  verify it.
"""

from __future__ import annotations

import struct
from bisect import bisect_right
from collections import deque
from typing import Callable, Optional

from ..ir.interp import DATA_BASE
from ..rtl.module import RtlModule

__all__ = ["MemorySystem", "MemError", "SimMemoryView"]

#: Reusable backing buffers, keyed by size.  Allocating (and first-
#: touching) an 8 MB ``bytearray`` costs a large fraction of a short
#: simulation, so finished runs donate their buffer back here along
#: with the high-water mark of dirtied bytes; the next ``MemorySystem``
#: of the same size re-zeroes only that dirty prefix.  Ownership is
#: handed from the ``MemorySystem`` to the ``SimMemoryView`` when a
#: result is built (see ``machine.py``): the buffer re-enters the pool
#: only once the view is garbage, so a live ``SimResult`` can never
#: alias a recycled buffer.
_buffer_pool: dict[int, list[tuple[bytearray, int]]] = {}
_BUFFER_POOL_MAX = 2


def _pool_release(size: int, data: bytearray, dirty: list) -> None:
    bucket = _buffer_pool.setdefault(size, [])
    if len(bucket) < _BUFFER_POOL_MAX:
        bucket.append((data, dirty[0], dirty[1]))


class MemError(Exception):
    """Out-of-range access or similar runtime trap."""


class SimMemoryView:
    """Read-only view of the final memory image of a simulation.

    Indexes and slices like the underlying ``bytearray``, but pickles
    only the data segment (globals), not the full ``1 << 23`` address
    space — a :class:`~repro.sim.machine.SimResult` crossing a process
    boundary (the parallel table harness) ships kilobytes instead of
    8 MB.  After unpickling, reads above ``data_end`` raise
    :class:`MemError` rather than silently returning zeros; checksum
    globals (``SimResult.global_bytes``) always live below ``data_end``.
    """

    __slots__ = ("_data", "data_end", "_size", "__weakref__")

    def __init__(self, data, data_end: int, size: Optional[int] = None):
        self._data = data
        self.data_end = data_end
        self._size = len(data) if size is None else size

    def __len__(self) -> int:
        return self._size

    def _trimmed(self, addr) -> MemError:
        return MemError(
            f"access at {addr:#x} beyond the data segment "
            f"(end {self.data_end:#x}): stack bytes were dropped when "
            f"this result crossed a process boundary")

    def __getitem__(self, key):
        data = self._data
        if isinstance(key, slice):
            start, stop, _step = key.indices(self._size)
            if stop > len(data) and start < stop:
                raise self._trimmed(stop)
            return data[key]
        if key < 0:
            key += self._size
        if key >= len(data):
            if key < self._size:
                raise self._trimmed(key)
            raise IndexError("memory index out of range")
        return data[key]

    def tobytes(self) -> bytes:
        """The retained image (full before pickling, data segment after)."""
        return bytes(self._data)

    def __reduce__(self):
        return (SimMemoryView,
                (bytes(self._data[:self.data_end]), self.data_end,
                 self._size))


class MemorySystem:
    """Memory array + request scheduling."""

    def __init__(self, module: RtlModule, size: int = 1 << 23,
                 latency: int = 4, ports: int = 2) -> None:
        self.size = size
        self.latency = latency
        self.ports = ports
        bucket = _buffer_pool.get(size)
        if bucket:
            self.data, high, stack_low = bucket.pop()
            if high > DATA_BASE:
                self.data[DATA_BASE:high] = bytes(high - DATA_BASE)
            if stack_low < size:
                self.data[stack_low:] = bytes(size - stack_low)
        else:
            self.data = bytearray(size)
        #: dirty extents: ``[DATA_BASE, _dirty[0])`` for the upward-
        #: growing data segment and ``[_dirty[1], size)`` for the
        #: downward-growing stack; writes below the halfway mark widen
        #: the former, writes above it widen the latter.  A mutable
        #: list so the pool-release finalizer (registered by the
        #: simulator on the result view) sees the final values.
        self._dirty = [DATA_BASE, size]
        self._dirty_split = size >> 1
        self.globals_base: dict[str, int] = {}
        self._layout(module)
        self._dirty[0] = max(self._dirty[0], self.data_end)
        #: (due_cycle, callback, value) completions; due cycles are
        #: monotone (fixed latency, appended in cycle order), so the
        #: front entry is always the next to complete
        self._inflight: deque[tuple[int, Callable, object]] = deque()
        self._accepted_this_cycle = 0
        self.reads = 0
        self.writes = 0
        #: per-region traffic, populated only by enable_region_stats()
        self.region_stats: Optional[dict[str, dict[str, int]]] = None
        self._region_bounds: list[tuple[int, int, str]] = []

    def _layout(self, module: RtlModule) -> None:
        addr = DATA_BASE
        self._module_objects = list(module.data.values())
        for obj in module.data.values():
            align = max(obj.align, 1)
            addr = (addr + align - 1) & ~(align - 1)
            self.globals_base[obj.name] = addr
            image = obj.image()
            self.data[addr:addr + obj.size] = image
            addr += obj.size
        self.data_end = addr

    # -- telemetry -------------------------------------------------------------
    def enable_region_stats(self) -> None:
        """Start classifying each accepted request into a named region
        (one per global object, plus ``stack`` for everything above the
        data segment).  Off by default: the classification costs a
        bisect per request."""
        self.region_stats = {}
        bounds = []
        for obj in self._module_objects:
            base = self.globals_base[obj.name]
            bounds.append((base, base + obj.size, obj.name))
        self._region_bounds = sorted(bounds)

    def _classify(self, addr: int, key: str) -> None:
        idx = bisect_right(self._region_bounds, (addr, self.size, "")) - 1
        name = "stack"
        if idx >= 0:
            base, end, obj_name = self._region_bounds[idx]
            if base <= addr < end:
                name = obj_name
        stats = self.region_stats.setdefault(
            name, {"reads": 0, "writes": 0})
        stats[key] += 1

    # -- raw access ------------------------------------------------------------
    def _check(self, addr: int, width: int) -> None:
        if addr < DATA_BASE or addr + width > self.size:
            raise MemError(f"memory access out of range: {addr:#x}")

    def read_value(self, addr: int, width: int, fp: bool, signed: bool):
        self._check(addr, width)
        raw = bytes(self.data[addr:addr + width])
        if fp:
            return struct.unpack("<d", raw)[0]
        if width == 1:
            return struct.unpack("<b" if signed else "<B", raw)[0]
        if width == 2:
            return struct.unpack("<h" if signed else "<H", raw)[0]
        return struct.unpack("<i" if signed else "<I", raw)[0]

    def write_value(self, addr: int, width: int, fp: bool, value) -> None:
        self._check(addr, width)
        if fp:
            raw = struct.pack("<d", float(value))
        elif width == 1:
            raw = struct.pack("<B", int(value) & 0xFF)
        elif width == 2:
            raw = struct.pack("<H", int(value) & 0xFFFF)
        else:
            raw = struct.pack("<I", int(value) & 0xFFFFFFFF)
        self.data[addr:addr + width] = raw
        dirty = self._dirty
        if addr >= self._dirty_split:
            if addr < dirty[1]:
                dirty[1] = addr
        elif addr + width > dirty[0]:
            dirty[0] = addr + width

    # -- timed interface ------------------------------------------------------------
    def begin_cycle(self) -> None:
        self._accepted_this_cycle = 0

    def can_accept(self) -> bool:
        return self._accepted_this_cycle < self.ports

    def request_read(self, cycle: int, addr: int, width: int, fp: bool,
                     signed: bool, deliver: Callable) -> bool:
        """Accept a read; ``deliver(value)`` fires after the latency.
        Returns False if the port limit was reached this cycle."""
        if not self.can_accept():
            return False
        # Read before counting: an out-of-range address (an infinite
        # stream prefetching past the data segment) must not consume a
        # port slot or inflate the read counter here — the caller's
        # MemError fallback accounts for the attempted slot itself, and
        # the counters stay comparable between the fast and slow loops,
        # which reach the trapping attempt a different number of times.
        value = self.read_value(addr, width, fp, signed)
        self._accepted_this_cycle += 1
        self.reads += 1
        if self.region_stats is not None:
            self._classify(addr, "reads")
        self._inflight.append((cycle + self.latency, deliver, value))
        return True

    def request_write(self, cycle: int, addr: int, width: int, fp: bool,
                      value) -> bool:
        """Accept a write (applied immediately; completion is modeled by
        the port bandwidth, not by delaying visibility)."""
        if not self.can_accept():
            return False
        self._accepted_this_cycle += 1
        self.writes += 1
        if self.region_stats is not None:
            self._classify(addr, "writes")
        self.write_value(addr, width, fp, value)
        return True

    def tick(self, cycle: int) -> int:
        """Deliver completions due at ``cycle``; returns how many."""
        inflight = self._inflight
        if not inflight or inflight[0][0] > cycle:
            return 0
        count = 0
        while inflight and inflight[0][0] <= cycle:
            _due_cycle, deliver, value = inflight.popleft()
            deliver(value)
            count += 1
        return count

    def next_due(self) -> Optional[int]:
        """Cycle of the earliest pending completion, or None."""
        inflight = self._inflight
        return inflight[0][0] if inflight else None

    def busy(self) -> bool:
        return bool(self._inflight)
