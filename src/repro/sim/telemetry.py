"""Simulator telemetry: per-unit, per-FIFO, per-stream attribution.

Collected only when a simulation is started with ``telemetry=True``
(``WMSimulator(..., telemetry=True)`` / ``simulate(..., telemetry=True)``
/ ``CompileResult.simulate(telemetry=True)``); the default path adds a
single predicted-not-taken branch per cycle, keeping cycle counts and
timings identical to the uninstrumented simulator.

What is attributed:

* **units** (IEU/FEU) — every cycle is classified as *busy* (an
  instruction executed or a multi-cycle operation occupied the unit),
  *stalled* (the queue head could not execute, with a reason:
  ``operand-wait``, ``output-full``, ``memory-port``, ``store-conflict``,
  ``stream-drain``, ``cc-full``) or *idle* (empty queue).
* **FIFOs** — occupancy sampled once per cycle into a per-level
  histogram plus an exact high-water mark maintained by the FIFOs
  themselves on every push.
* **streams** (SCU) — per activated stream: activation/completion
  cycles and elements transferred, plus SCU busy-cycle count.
* **memory** — reads/writes classified per region (each global array /
  the stack) by :class:`~repro.sim.memory.MemorySystem`.

:meth:`SimTelemetry.emit_spans` projects the collected attribution onto
a :class:`repro.obs.Tracer` as simulated-time spans (one per unit, one
per stream) so a run can be inspected in ``chrome://tracing``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

__all__ = ["UnitStats", "FifoStats", "StreamStats", "SimTelemetry"]

#: occupancy histogram size (FIFO capacities are small; clamp above)
_MAX_LEVEL = 32


@dataclass
class UnitStats:
    """Cycle attribution for one in-order execution unit."""

    name: str
    busy_cycles: int = 0
    stall_cycles: int = 0
    idle_cycles: int = 0
    stall_reasons: dict[str, int] = field(default_factory=dict)

    def record(self, status: str, reason: Optional[str]) -> None:
        if status == "busy":
            self.busy_cycles += 1
        elif status == "stall":
            self.stall_cycles += 1
            key = reason or "unknown"
            self.stall_reasons[key] = self.stall_reasons.get(key, 0) + 1
        else:
            self.idle_cycles += 1

    def record_many(self, status: str, reason: Optional[str],
                    count: int) -> None:
        """Attribute ``count`` identical cycles at once (the simulator's
        stall fast-forward replays the skip-initiating cycle's status
        for every skipped cycle)."""
        if status == "busy":
            self.busy_cycles += count
        elif status == "stall":
            self.stall_cycles += count
            key = reason or "unknown"
            self.stall_reasons[key] = \
                self.stall_reasons.get(key, 0) + count
        else:
            self.idle_cycles += count

    def to_dict(self) -> dict:
        return {
            "busy_cycles": self.busy_cycles,
            "stall_cycles": self.stall_cycles,
            "idle_cycles": self.idle_cycles,
            "stall_reasons": dict(sorted(self.stall_reasons.items())),
        }


@dataclass
class FifoStats:
    """Occupancy statistics for one FIFO (sampled once per cycle)."""

    name: str
    capacity: int = 0
    high_water: int = 0
    samples: int = 0
    #: occupancy_cycles[n] = cycles the FIFO held exactly n elements
    occupancy_cycles: list[int] = field(
        default_factory=lambda: [0] * (_MAX_LEVEL + 1))

    def sample(self, occupancy: int) -> None:
        self.samples += 1
        self.occupancy_cycles[min(occupancy, _MAX_LEVEL)] += 1

    def sample_many(self, occupancy: int, count: int) -> None:
        """Record ``count`` cycles at a constant occupancy (stall
        fast-forward: the FIFO cannot change while nothing moves)."""
        self.samples += count
        self.occupancy_cycles[min(occupancy, _MAX_LEVEL)] += count

    @property
    def mean_occupancy(self) -> float:
        if not self.samples:
            return 0.0
        return sum(n * c for n, c in enumerate(self.occupancy_cycles)) \
            / self.samples

    @property
    def full_cycles(self) -> int:
        """Cycles spent at capacity (back-pressure on the producer)."""
        if not self.capacity:
            return 0
        return sum(self.occupancy_cycles[self.capacity:])

    def to_dict(self) -> dict:
        top = max((n for n, c in enumerate(self.occupancy_cycles) if c),
                  default=0)
        return {
            "capacity": self.capacity,
            "high_water": self.high_water,
            "mean_occupancy": round(self.mean_occupancy, 3),
            "full_cycles": self.full_cycles,
            "occupancy_cycles": self.occupancy_cycles[:top + 1],
        }


@dataclass
class StreamStats:
    """Progress record for one activated SCU stream."""

    key: str
    kind: str                      # "in" | "out"
    start_cycle: int
    base: int
    stride: int
    width: int
    count: Optional[int]
    elements: int = 0
    last_cycle: int = 0

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "start_cycle": self.start_cycle,
            "end_cycle": self.last_cycle,
            "elements": self.elements,
            "base": self.base,
            "stride": self.stride,
            "width": self.width,
            "count": self.count,
        }


class SimTelemetry:
    """All telemetry of one simulated run."""

    def __init__(self) -> None:
        self.units: dict[str, UnitStats] = {
            "IEU": UnitStats("IEU"),
            "FEU": UnitStats("FEU"),
        }
        self.fifos: dict[str, FifoStats] = {}
        self.streams: list[StreamStats] = []
        self.scu_busy_cycles = 0
        self.mem_busy_cycles = 0
        self.mem_regions: dict[str, dict] = {}
        self.cycles = 0

    def fifo(self, name: str, capacity: int) -> FifoStats:
        stats = self.fifos.get(name)
        if stats is None:
            stats = self.fifos[name] = FifoStats(name, capacity)
        return stats

    def to_dict(self) -> dict:
        return {
            "cycles": self.cycles,
            "units": {n: u.to_dict() for n, u in self.units.items()},
            "scu_busy_cycles": self.scu_busy_cycles,
            "mem_busy_cycles": self.mem_busy_cycles,
            "fifos": {n: f.to_dict()
                      for n, f in sorted(self.fifos.items())},
            "streams": [s.to_dict() for s in self.streams],
            "memory_regions": {n: dict(v) for n, v in
                               sorted(self.mem_regions.items())},
        }

    def emit_spans(self, tracer) -> None:
        """Project the attribution onto ``tracer`` as simulated-time
        spans: one span per execution unit (IEU/FEU/SCU/MEM) covering
        the whole run, one per activated stream, plus instant events
        for FIFO high-water marks."""
        end = float(self.cycles)
        for name, unit in self.units.items():
            tracer.span_at(
                f"{name} ({unit.busy_cycles} busy / "
                f"{unit.stall_cycles} stall)",
                0.0, end, category="sim", track=name, **unit.to_dict())
        tracer.span_at(f"SCU ({self.scu_busy_cycles} busy)", 0.0, end,
                       category="sim", track="SCU",
                       busy_cycles=self.scu_busy_cycles)
        tracer.span_at(f"MEM ({self.mem_busy_cycles} busy)", 0.0, end,
                       category="sim", track="MEM",
                       busy_cycles=self.mem_busy_cycles,
                       regions=self.mem_regions)
        for stream in self.streams:
            tracer.span_at(
                f"stream-{stream.kind} {stream.key}",
                float(stream.start_cycle),
                float(stream.last_cycle or self.cycles),
                category="sim", track="SCU", **stream.to_dict())
        for name, fifo in sorted(self.fifos.items()):
            tracer.event_at(
                f"fifo {name} hwm={fifo.high_water}", end,
                category="sim", track="FIFO", **fifo.to_dict())

    def summary_lines(self) -> list[str]:
        """Human-readable digest used by the CLI trace/summary output."""
        lines = [f"simulated cycles: {self.cycles}"]
        for name, unit in self.units.items():
            reasons = ", ".join(f"{k}={v}" for k, v in
                                sorted(unit.stall_reasons.items()))
            lines.append(
                f"  {name}: busy {unit.busy_cycles}, "
                f"stall {unit.stall_cycles}, idle {unit.idle_cycles}"
                + (f"  [{reasons}]" if reasons else ""))
        lines.append(f"  SCU: busy {self.scu_busy_cycles}; "
                     f"MEM: busy {self.mem_busy_cycles}")
        for name, fifo in sorted(self.fifos.items()):
            if not fifo.high_water:
                continue
            lines.append(f"  fifo {name}: high-water {fifo.high_water}/"
                         f"{fifo.capacity}, mean {fifo.mean_occupancy:.2f},"
                         f" full {fifo.full_cycles} cycles")
        for stream in self.streams:
            lines.append(
                f"  stream {stream.key} ({stream.kind}): "
                f"{stream.elements} elements, cycles "
                f"{stream.start_cycle}..{stream.last_cycle}")
        for region, stats in sorted(self.mem_regions.items()):
            lines.append(f"  mem[{region}]: {stats.get('reads', 0)} reads, "
                         f"{stats.get('writes', 0)} writes")
        return lines
