"""Simulator telemetry: per-unit, per-FIFO, per-stream attribution.

Collected only when a simulation is started with ``telemetry=True``
(``WMSimulator(..., telemetry=True)`` / ``simulate(..., telemetry=True)``
/ ``CompileResult.simulate(telemetry=True)``); the default path adds a
single predicted-not-taken branch per cycle, keeping cycle counts and
timings identical to the uninstrumented simulator.

What is attributed:

* **units** (IEU/FEU) — every cycle is classified as *busy* (an
  instruction executed or a multi-cycle operation occupied the unit),
  *stalled* (the queue head could not execute, with a reason:
  ``operand-wait``, ``output-full``, ``memory-port``, ``store-conflict``,
  ``stream-drain``, ``cc-full``) or *idle* (empty queue).
* **FIFOs** — occupancy sampled once per cycle into a per-level
  histogram plus an exact high-water mark maintained by the FIFOs
  themselves on every push.
* **streams** (SCU) — per activated stream: activation/completion
  cycles and elements transferred, plus SCU busy-cycle count.
* **memory** — reads/writes classified per region (each global array /
  the stack) by :class:`~repro.sim.memory.MemorySystem`.

:meth:`SimTelemetry.emit_spans` projects the collected attribution onto
a :class:`repro.obs.Tracer` as simulated-time spans (one per unit, one
per stream) so a run can be inspected in ``chrome://tracing``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

__all__ = [
    "UnitStats", "FifoStats", "StreamStats", "SimTelemetry",
    "LEDGER_CAUSES", "CycleLedger", "LoopIterStats", "detect_steady_ii",
]

#: occupancy histogram size (FIFO capacities are small; clamp above)
_MAX_LEVEL = 32

#: Every cause the cycle ledger may charge a cycle to.  ``execute`` is
#: productive work; the rest say what the unit was waiting for.
LEDGER_CAUSES = (
    "execute",         # an instruction retired (or the SCU moved data)
    "unit-busy",       # occupied by an earlier multi-cycle operation
    "fifo-full",       # output (or CC) FIFO back-pressure
    "fifo-empty",      # waiting for FIFO operands to arrive
    "memory-latency",  # waiting on ports, in-flight requests, or drains
    "branch",          # idle while the IFU waits on a branch condition
    "drain",           # idle during final drain (Ret/halt wind-down)
    "idle",            # nothing queued and no blocking condition
)


@dataclass
class UnitStats:
    """Cycle attribution for one in-order execution unit."""

    name: str
    busy_cycles: int = 0
    stall_cycles: int = 0
    idle_cycles: int = 0
    stall_reasons: dict[str, int] = field(default_factory=dict)

    def record(self, status: str, reason: Optional[str]) -> None:
        if status == "busy":
            self.busy_cycles += 1
        elif status == "stall":
            self.stall_cycles += 1
            key = reason or "unknown"
            self.stall_reasons[key] = self.stall_reasons.get(key, 0) + 1
        else:
            self.idle_cycles += 1

    def record_many(self, status: str, reason: Optional[str],
                    count: int) -> None:
        """Attribute ``count`` identical cycles at once (the simulator's
        stall fast-forward replays the skip-initiating cycle's status
        for every skipped cycle)."""
        if count <= 0:
            return  # keep exact equivalence with `count` record() calls
        if status == "busy":
            self.busy_cycles += count
        elif status == "stall":
            self.stall_cycles += count
            key = reason or "unknown"
            self.stall_reasons[key] = \
                self.stall_reasons.get(key, 0) + count
        else:
            self.idle_cycles += count

    def to_dict(self) -> dict:
        return {
            "busy_cycles": self.busy_cycles,
            "stall_cycles": self.stall_cycles,
            "idle_cycles": self.idle_cycles,
            "stall_reasons": dict(sorted(self.stall_reasons.items())),
        }


@dataclass
class FifoStats:
    """Occupancy statistics for one FIFO (sampled once per cycle)."""

    name: str
    capacity: int = 0
    high_water: int = 0
    samples: int = 0
    #: occupancy_cycles[n] = cycles the FIFO held exactly n elements
    occupancy_cycles: list[int] = field(
        default_factory=lambda: [0] * (_MAX_LEVEL + 1))

    def sample(self, occupancy: int) -> None:
        self.samples += 1
        self.occupancy_cycles[min(occupancy, _MAX_LEVEL)] += 1

    def sample_many(self, occupancy: int, count: int) -> None:
        """Record ``count`` cycles at a constant occupancy (stall
        fast-forward: the FIFO cannot change while nothing moves)."""
        self.samples += count
        self.occupancy_cycles[min(occupancy, _MAX_LEVEL)] += count

    @property
    def mean_occupancy(self) -> float:
        if not self.samples:
            return 0.0
        return sum(n * c for n, c in enumerate(self.occupancy_cycles)) \
            / self.samples

    @property
    def full_cycles(self) -> int:
        """Cycles spent at capacity (back-pressure on the producer)."""
        if not self.capacity:
            return 0
        return sum(self.occupancy_cycles[self.capacity:])

    def to_dict(self) -> dict:
        top = max((n for n, c in enumerate(self.occupancy_cycles) if c),
                  default=0)
        return {
            "capacity": self.capacity,
            "high_water": self.high_water,
            "mean_occupancy": round(self.mean_occupancy, 3),
            "full_cycles": self.full_cycles,
            "occupancy_cycles": self.occupancy_cycles[:top + 1],
        }


@dataclass
class StreamStats:
    """Progress record for one activated SCU stream."""

    key: str
    kind: str                      # "in" | "out"
    start_cycle: int
    base: int
    stride: int
    width: int
    count: Optional[int]
    elements: int = 0
    last_cycle: int = 0

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "start_cycle": self.start_cycle,
            "end_cycle": self.last_cycle,
            "elements": self.elements,
            "base": self.base,
            "stride": self.stride,
            "width": self.width,
            "count": self.count,
        }


#: iteration-delta ring size for the steady-state II detector
_TAIL_SIZE = 64

#: longest repeating pattern of per-iteration deltas the detector tries
_MAX_PERIOD = 8


class LoopIterStats:
    """Per-loop iteration record: back-edge count and cycle deltas.

    Fed by the IFU on every taken back edge; the deltas between
    consecutive back edges of a loop are the observed initiation
    intervals.  A bounded tail ring keeps the most recent deltas for
    the periodicity check without unbounded growth.
    """

    __slots__ = ("iterations", "last_cycle", "deltas", "_tail", "_depths",
                 "_occs", "_dues", "_pos")

    def __init__(self) -> None:
        self.iterations = 0
        self.last_cycle = -1
        #: delta histogram: cycles-per-iteration -> occurrences
        self.deltas: dict[int, int] = {}
        self._tail: list[int] = []
        #: unit-queue depth at each recorded back edge (aligned with
        #: ``_tail``); lets the steady detector see queue build-up
        self._depths: list[int] = []
        #: total stream-FIFO occupancy at each back edge — a steady
        #: verdict requires it to repeat with the same period as the
        #: cycle deltas (constant pace with drifting buffers is not a
        #: steady state the fast-forward engine could replay)
        self._occs: list[int] = []
        #: cycles until the next memory completion at each back edge
        #: (-1 when nothing is in flight) — likewise must be periodic
        self._dues: list[int] = []
        self._pos = 0

    def note(self, cycle: int, depth: int = 0, occupancy: int = 0,
             mem_due: int = -1) -> None:
        if self.last_cycle >= 0:
            delta = cycle - self.last_cycle
            self.deltas[delta] = self.deltas.get(delta, 0) + 1
            if len(self._tail) < _TAIL_SIZE:
                self._tail.append(delta)
                self._depths.append(depth)
                self._occs.append(occupancy)
                self._dues.append(mem_due)
            else:
                self._tail[self._pos] = delta
                self._depths[self._pos] = depth
                self._occs[self._pos] = occupancy
                self._dues[self._pos] = mem_due
                self._pos = (self._pos + 1) % _TAIL_SIZE
        self.iterations += 1
        self.last_cycle = cycle

    def tail(self) -> list[int]:
        """The recorded deltas, oldest first."""
        return self._tail[self._pos:] + self._tail[:self._pos]

    def depth_tail(self) -> list[int]:
        """Queue depths at the recorded back edges, oldest first."""
        return self._depths[self._pos:] + self._depths[:self._pos]

    def occupancy_tail(self) -> list[int]:
        """Stream-FIFO occupancies at the back edges, oldest first."""
        return self._occs[self._pos:] + self._occs[:self._pos]

    def due_tail(self) -> list[int]:
        """Next-memory-completion deltas at the back edges, oldest
        first (-1 where nothing was in flight)."""
        return self._dues[self._pos:] + self._dues[:self._pos]

    def to_dict(self) -> dict:
        return {
            "iterations": self.iterations,
            "last_cycle": self.last_cycle,
            "deltas": {str(k): v for k, v in sorted(self.deltas.items())},
            "tail": self.tail(),
            "depth_tail": self.depth_tail(),
            "occupancy_tail": self.occupancy_tail(),
            "due_tail": self.due_tail(),
        }


def detect_steady_ii(stats: LoopIterStats) -> dict:
    """Steady-state initiation interval from the per-iteration deltas.

    Looks for the smallest period ``p`` (up to :data:`_MAX_PERIOD`) such
    that a *suffix* of the recent delta tail repeats with period ``p``;
    the II is then the exact average of one period.  Matching a suffix
    rather than the whole window matters because the first iterations of
    a loop run ahead of the execution units — the IFU dispatches into
    the unit queues and takes back edges early — so the leading deltas
    under-shoot the steady II until the queues saturate.  The suffix
    must cover at least two full periods and at least half the window,
    must not show net unit-queue growth (a constant pace with queues
    filling behind it is transient), and the stream-FIFO occupancies
    and next-memory-completion deltas sampled at the back edges must
    repeat with the same period (outside a short exit-drain suffix),
    so a still-transient run is not mistaken for steady state.  A periodic verdict is the heuristic
    twin of the guard the analytic fast-forward needs; the superop
    engine (:mod:`repro.sim.superops`) proves the stronger exact form —
    full timing-state fingerprint equality — before it advances.

    Falls back to the all-iterations mean with ``periodic=False`` when
    no period fits; the mean blends warm-up with steady iterations, so
    it can sit on either side of the true steady II.
    """
    tail = stats.tail()
    window = tail[-32:]
    depths = stats.depth_tail()[-32:]
    occs = stats.occupancy_tail()[-32:]
    dues = stats.due_tail()[-32:]
    n = len(window)
    for period in range(1, _MAX_PERIOD + 1):
        if n < 2 * period:
            break
        matches = 0
        for j in range(n - 1, period - 1, -1):
            if window[j] != window[j - period]:
                break
            matches += 1
        suffix = matches + period
        if matches >= period and 2 * suffix >= n:
            # Back edges can repeat at a constant pace while the unit
            # queues silently fill behind them (the IFU runs ahead of
            # execution until a queue saturates) — a pace that is pure
            # transient, not sustainable.  Net queue growth across the
            # candidate suffix beyond within-period wobble rejects it.
            if len(depths) == n and \
                    depths[-1] - depths[-suffix] > period:
                break
            # The FIFO occupancies and the memory phase must repeat
            # with the same period: a constant back-edge pace whose
            # buffers or in-flight due-times drift is not a state the
            # analytic fast-forward could replay, so it must not earn
            # the periodic verdict.  The ring ends at the loop's final
            # iterations, where streams close and the FIFOs drain at an
            # unchanged pace, so a short trailing suffix is exempt —
            # genuine transient drift spans the whole window and still
            # fails the interior.  A longer period may still fit.
            guard = min(matches // 2, 8)
            if len(occs) == n and any(
                    occs[j] != occs[j - period] or
                    dues[j] != dues[j - period]
                    for j in range(n - matches, n - guard)):
                continue
            return {
                "ii": sum(window[-period:]) / period,
                "periodic": True,
                "period": period,
                "samples": suffix,
            }
    total = sum(d * c for d, c in stats.deltas.items())
    count = sum(stats.deltas.values())
    return {
        "ii": (total / count) if count else None,
        "periodic": False,
        "period": 0,
        "samples": count,
    }


#: transition-list cap per FIFO occupancy track (Chrome counter lanes)
_TRACK_LIMIT = 4096


class CycleLedger:
    """Exact per-loop, per-cause attribution of every unit cycle.

    Three lanes (IEU/FEU/SCU) each charge every simulated cycle to
    exactly one ``(loop, cause)`` pair, so for any lane the counts of a
    loop sum to the cycles the program counter spent inside it, and the
    lane's grand total equals the run's cycle count (the ledger
    invariant, tested over the whole benchmark suite).  The simulator
    keeps the fast path's bulk attribution (``charge`` with a count)
    bit-identical to the reference loop's per-cycle charges.
    """

    def __init__(self, loopmap) -> None:
        self.loopmap = loopmap
        self.lanes: dict[str, dict[int, dict[str, int]]] = {
            "IEU": {}, "FEU": {}, "SCU": {}}
        self.iters: dict[int, LoopIterStats] = {}
        #: per-FIFO occupancy transition lists [(cycle, level), ...]
        self.fifo_tracks: dict[str, list] = {}
        self.tracks_truncated = False

    def charge(self, lane: str, lid: int, cause: str,
               count: int = 1) -> None:
        per = self.lanes[lane]
        causes = per.get(lid)
        if causes is None:
            causes = per[lid] = {}
        causes[cause] = causes.get(cause, 0) + count

    def note_iteration(self, lid: int, cycle: int,
                       depth: int = 0, occupancy: int = 0,
                       mem_due: int = -1) -> None:
        stats = self.iters.get(lid)
        if stats is None:
            stats = self.iters[lid] = LoopIterStats()
        stats.note(cycle, depth, occupancy, mem_due)

    def track_fifo(self, name: str, cycle: int, level: int) -> None:
        track = self.fifo_tracks.get(name)
        if track is None:
            track = self.fifo_tracks[name] = []
        if track and track[-1][1] == level:
            return
        if len(track) >= _TRACK_LIMIT:
            self.tracks_truncated = True
            return
        track.append((cycle, level))

    # ------------------------------------------------------------ queries --
    def lane_total(self, lane: str) -> int:
        return sum(count
                   for causes in self.lanes[lane].values()
                   for count in causes.values())

    def loop_cycles(self, lid: int) -> int:
        """Cycles the pc spent inside loop ``lid`` (any single lane's
        per-loop total — the lanes agree by construction)."""
        return sum(self.lanes["IEU"].get(lid, {}).values())

    def check_invariant(self, cycles: int) -> None:
        """Raise if any lane did not attribute every cycle exactly once."""
        for lane in self.lanes:
            total = self.lane_total(lane)
            if total != cycles:
                raise AssertionError(
                    f"ledger invariant violated: lane {lane} attributed "
                    f"{total} of {cycles} cycles")

    def to_dict(self) -> dict:
        return {
            "causes": list(LEDGER_CAUSES),
            "loops": [info.to_dict() for info in self.loopmap.loops],
            "lanes": {
                lane: {str(lid): dict(sorted(causes.items()))
                       for lid, causes in sorted(per.items())}
                for lane, per in self.lanes.items()},
            "iterations": {str(lid): stats.to_dict()
                           for lid, stats in sorted(self.iters.items())},
            "fifo_tracks": {name: [list(t) for t in track]
                            for name, track in
                            sorted(self.fifo_tracks.items())},
            "tracks_truncated": self.tracks_truncated,
        }


class SimTelemetry:
    """All telemetry of one simulated run."""

    def __init__(self) -> None:
        self.units: dict[str, UnitStats] = {
            "IEU": UnitStats("IEU"),
            "FEU": UnitStats("FEU"),
        }
        self.fifos: dict[str, FifoStats] = {}
        self.streams: list[StreamStats] = []
        self.scu_busy_cycles = 0
        self.mem_busy_cycles = 0
        self.mem_regions: dict[str, dict] = {}
        self.cycles = 0
        #: cycle ledger; present only on profiled runs (``profile=True``)
        self.ledger: Optional[CycleLedger] = None

    def fifo(self, name: str, capacity: int) -> FifoStats:
        stats = self.fifos.get(name)
        if stats is None:
            stats = self.fifos[name] = FifoStats(name, capacity)
        return stats

    def to_dict(self) -> dict:
        data = {
            "cycles": self.cycles,
            "units": {n: u.to_dict() for n, u in self.units.items()},
            "scu_busy_cycles": self.scu_busy_cycles,
            "mem_busy_cycles": self.mem_busy_cycles,
            "fifos": {n: f.to_dict()
                      for n, f in sorted(self.fifos.items())},
            "streams": [s.to_dict() for s in self.streams],
            "memory_regions": {n: dict(v) for n, v in
                               sorted(self.mem_regions.items())},
        }
        if self.ledger is not None:
            data["ledger"] = self.ledger.to_dict()
        return data

    def emit_spans(self, tracer) -> None:
        """Project the attribution onto ``tracer`` as simulated-time
        spans: one span per execution unit (IEU/FEU/SCU/MEM) covering
        the whole run, one per activated stream, plus instant events
        for FIFO high-water marks."""
        end = float(self.cycles)
        for name, unit in self.units.items():
            tracer.span_at(
                f"{name} ({unit.busy_cycles} busy / "
                f"{unit.stall_cycles} stall)",
                0.0, end, category="sim", track=name, **unit.to_dict())
        tracer.span_at(f"SCU ({self.scu_busy_cycles} busy)", 0.0, end,
                       category="sim", track="SCU",
                       busy_cycles=self.scu_busy_cycles)
        tracer.span_at(f"MEM ({self.mem_busy_cycles} busy)", 0.0, end,
                       category="sim", track="MEM",
                       busy_cycles=self.mem_busy_cycles,
                       regions=self.mem_regions)
        for stream in self.streams:
            tracer.span_at(
                f"stream-{stream.kind} {stream.key}",
                float(stream.start_cycle),
                float(stream.last_cycle or self.cycles),
                category="sim", track="SCU", **stream.to_dict())
        for name, fifo in sorted(self.fifos.items()):
            tracer.event_at(
                f"fifo {name} hwm={fifo.high_water}", end,
                category="sim", track="FIFO", **fifo.to_dict())
        ledger = self.ledger
        if ledger is not None:
            # FIFO occupancy as Chrome counter lanes ("C" events): one
            # sample per occupancy transition, RLE-compact by design.
            for name, track in sorted(ledger.fifo_tracks.items()):
                for cycle, level in track:
                    tracer.event_at(f"fifo {name}", float(cycle),
                                    category="counter",
                                    track=f"fifo {name}", level=level)
                if track and track[-1][1] != 0:
                    tracer.event_at(f"fifo {name}", end,
                                    category="counter",
                                    track=f"fifo {name}",
                                    level=track[-1][1])

    def summary_lines(self) -> list[str]:
        """Human-readable digest used by the CLI trace/summary output."""
        lines = [f"simulated cycles: {self.cycles}"]
        for name, unit in self.units.items():
            reasons = ", ".join(f"{k}={v}" for k, v in
                                sorted(unit.stall_reasons.items()))
            lines.append(
                f"  {name}: busy {unit.busy_cycles}, "
                f"stall {unit.stall_cycles}, idle {unit.idle_cycles}"
                + (f"  [{reasons}]" if reasons else ""))
        lines.append(f"  SCU: busy {self.scu_busy_cycles}; "
                     f"MEM: busy {self.mem_busy_cycles}")
        for name, fifo in sorted(self.fifos.items()):
            if not fifo.high_water:
                continue
            lines.append(f"  fifo {name}: high-water {fifo.high_water}/"
                         f"{fifo.capacity}, mean {fifo.mean_occupancy:.2f},"
                         f" full {fifo.full_cycles} cycles")
        for stream in self.streams:
            lines.append(
                f"  stream {stream.key} ({stream.kind}): "
                f"{stream.elements} elements, cycles "
                f"{stream.start_cycle}..{stream.last_cycle}")
        for region, stats in sorted(self.mem_regions.items()):
            lines.append(f"  mem[{region}]: {stats.get('reads', 0)} reads, "
                         f"{stats.get('writes', 0)} writes")
        return lines
