"""Data FIFOs with source reservations.

On WM, register 0 (and register 1 in streaming mode) of each execution
unit is a pair of FIFO queues buffering data to and from memory.  Data
can be pushed into an input FIFO by two kinds of *sources* — individual
load instructions and stream-in segments — and the order in which the
consumer observes elements must equal the order in which the IFU
dispatched the producing instructions, regardless of when the memory
system happens to respond.

:class:`InFifo` therefore keeps an ordered list of reservations; each
arriving datum is credited to its reservation, and elements become
visible strictly in reservation order.

Output FIFOs are the mirror image: the execution unit enqueues data in
program order, and consumers (store-issue instructions and stream-out
segments, in dispatch order) take elements from the front.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

__all__ = ["InFifo", "OutFifo", "Reservation", "FifoError"]


class FifoError(Exception):
    """FIFO protocol violation (a compiler bug surfaced at simulation).

    Carries the structured context of the violation: ``fifo`` (the queue
    name), ``capacity``, and ``kind`` — ``overflow`` (push into a full
    queue), ``underflow`` (pop from an empty queue) or ``protocol``
    (reservation misuse).  The simulator's run loop re-raises these as
    :class:`~repro.sim.errors.SimError` with the cycle/pc/queue snapshot
    attached.
    """

    def __init__(self, message: str, *, fifo: str = "",
                 capacity: Optional[int] = None,
                 kind: str = "protocol") -> None:
        super().__init__(message)
        self.fifo = fifo
        self.capacity = capacity
        self.kind = kind


class Reservation:
    """An ordered claim on FIFO slots by one data source.

    ``quota`` is the number of elements the source will deliver
    (None = unbounded, for infinite streams).
    """

    __slots__ = ("quota", "delivered", "buffer", "closed", "tag", "fifo")

    def __init__(self, quota: Optional[int], tag: str = "",
                 fifo: Optional["InFifo"] = None) -> None:
        self.quota = quota
        self.delivered = 0
        self.buffer: deque = deque()
        self.closed = False
        self.tag = tag
        self.fifo = fifo

    @property
    def exhausted(self) -> bool:
        """No more data will ever come from this source."""
        if self.closed:
            return not self.buffer
        if self.quota is None:
            return False
        return self.delivered >= self.quota and not self.buffer

    def deliver(self, value) -> None:
        if self.quota is not None and self.delivered >= self.quota:
            raise FifoError(f"source {self.tag} over-delivered",
                            fifo=self.fifo.name if self.fifo else "",
                            kind="protocol")
        self.delivered += 1
        self.buffer.append(value)
        fifo = self.fifo
        if fifo is not None:
            occupancy = fifo._buffered = fifo._buffered + 1
            if occupancy > fifo.high_water:
                fifo.high_water = occupancy

    def close(self) -> None:
        """Stop the source: drop buffered data, refuse late arrivals."""
        self.closed = True
        fifo = self.fifo
        if fifo is not None:
            fifo._buffered -= len(self.buffer)
        self.buffer.clear()


class InFifo:
    """An input FIFO: reservation-ordered delivery to one consumer."""

    def __init__(self, capacity: int = 8, name: str = "") -> None:
        self.capacity = capacity
        self.name = name
        #: exact maximum simultaneous occupancy ever observed
        self.high_water = 0
        self._sources: deque[Reservation] = deque()
        #: total buffered elements, maintained by deliver/pop/close so
        #: the per-cycle occupancy checks are O(1)
        self._buffered = 0

    def reserve(self, quota: Optional[int], tag: str = "") -> Reservation:
        res = Reservation(quota, tag, fifo=self)
        self._sources.append(res)
        return res

    def _advance(self) -> None:
        while self._sources and self._sources[0].exhausted:
            self._sources.popleft()

    def available(self) -> int:
        """Elements poppable consecutively right now.

        Counts buffered elements from the front across sources, stopping
        at the first source that may still deliver more data (a gap in
        the reservation order).
        """
        self._advance()
        total = 0
        for source in self._sources:
            total += len(source.buffer)
            done = source.closed or (
                source.quota is not None and
                source.delivered >= source.quota)
            if not done:
                break
        return total

    def pop(self):
        self._advance()
        if not self._sources or not self._sources[0].buffer:
            raise FifoError(f"read from empty input FIFO {self.name}",
                            fifo=self.name, capacity=self.capacity,
                            kind="underflow")
        value = self._sources[0].buffer.popleft()
        self._buffered -= 1
        self._advance()
        return value

    def buffered(self) -> int:
        """Total elements buffered across sources (for capacity checks)."""
        return self._buffered

    def has_room(self) -> bool:
        return self._buffered < self.capacity

    def pending_sources(self) -> int:
        self._advance()
        return len(self._sources)


class OutFifo:
    """An output FIFO: program-order data, dispatch-order consumers."""

    def __init__(self, capacity: int = 8, name: str = "") -> None:
        self.capacity = capacity
        self.name = name
        #: exact maximum occupancy ever observed
        self.high_water = 0
        self._data: deque = deque()

    def has_room(self) -> bool:
        return len(self._data) < self.capacity

    def push(self, value) -> None:
        if not self.has_room():
            raise FifoError(f"push to full output FIFO {self.name}",
                            fifo=self.name, capacity=self.capacity,
                            kind="overflow")
        self._data.append(value)
        if len(self._data) > self.high_water:
            self.high_water = len(self._data)

    def available(self) -> int:
        return len(self._data)

    def pop(self):
        if not self._data:
            raise FifoError(f"read from empty output FIFO {self.name}",
                            fifo=self.name, capacity=self.capacity,
                            kind="underflow")
        return self._data.popleft()
