"""Simulator error types.

Kept in their own module so the instruction pre-decoder
(:mod:`repro.sim.decode`) can raise simulation errors without importing
the simulator itself.
"""

from __future__ import annotations

__all__ = ["SimError"]


class SimError(Exception):
    """Simulation failure: deadlock, trap, or protocol violation."""
