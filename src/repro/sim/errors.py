"""Simulator error types.

Kept in their own module so the instruction pre-decoder
(:mod:`repro.sim.decode`) can raise simulation errors without importing
the simulator itself.

:class:`SimError` is *structured*: beyond the human-readable message it
carries the machine state needed to triage a failure — the failing
``kind`` (``cycle-limit``, ``deadlock``, ``fifo-overflow``, …), the
``cycle`` and ``pc`` at the raise point, and the per-unit ``queues``
snapshot — plus free-form ``details``.  :meth:`SimError.report` renders
all of it as a JSON-stable dict; the fault-injection harness
(:mod:`repro.qa.faults`) asserts that the same fault plan yields a
byte-identical report, and the fuzz reducer embeds reports in
reproducer bundles.
"""

from __future__ import annotations

from typing import Optional

__all__ = ["SimError"]


def _rebuild(message, kind, cycle, pc, queues, details):
    return SimError(message, kind=kind, cycle=cycle, pc=pc,
                    queues=queues, **details)


class SimError(Exception):
    """Simulation failure: deadlock, trap, or protocol violation.

    ``kind`` is a stable short code classifying the failure (empty for
    legacy/unclassified raises); ``cycle``/``pc`` locate it; ``queues``
    snapshots the unit queue depths; everything else lands in
    ``details``.
    """

    def __init__(self, message: str, *, kind: str = "",
                 cycle: Optional[int] = None, pc: Optional[int] = None,
                 queues: Optional[dict] = None, **details) -> None:
        super().__init__(message)
        self.kind = kind
        self.cycle = cycle
        self.pc = pc
        self.queues = dict(queues) if queues else {}
        self.details = details

    def report(self) -> dict:
        """A deterministic, JSON-serializable failure record.

        Only stable values are included (no object reprs or addresses),
        so the same failure produces a byte-identical
        ``json.dumps(err.report(), sort_keys=True)`` run to run.
        """
        out: dict = {"error": "SimError", "message": str(self)}
        if self.kind:
            out["kind"] = self.kind
        if self.cycle is not None:
            out["cycle"] = self.cycle
        if self.pc is not None:
            out["pc"] = self.pc
        if self.queues:
            out["queues"] = dict(self.queues)
        for key in sorted(self.details):
            value = self.details[key]
            if isinstance(value, (int, float, str, bool, type(None))):
                out[key] = value
            else:
                out[key] = str(value)
        return out

    def __reduce__(self):
        return (_rebuild, (str(self), self.kind, self.cycle, self.pc,
                           self.queues, self.details))
