"""Superops + steady-state fast-forward for the plain fast path.

Two cooperating tiers accelerate :meth:`WMSimulator._run_fast` without
touching its bit-exact contract against the ``slow=True`` reference:

**Superops.**  For every eligible innermost JNI-closed loop, the basic
blocks of the body are fused, once per module, into specialized Python
closures ("superops"): straight-line code with registers held in
locals, FIFO traffic lowered to plain deque operations, and memory
addresses resolved to baked layout constants.  They are *functional*
replicas — they compute exactly the values the interpreter would, in
the same order, but carry no cycle accounting — and are cached on the
module beside the decode cache (``module._superop_cache``).  Telemetry,
profile and fault runs never consult them: those need per-cycle
observation, and a fault plan forces the reference loop outright.

**Steady-state fast-forward.**  At every taken JNI back edge of an
eligible loop the engine snapshots a *boundary fingerprint*, split in
three:

* **T** (timing state): pc, the integer register file minus the
  designated linear registers, CC-FIFO contents, unit queue
  composition and relative busy times, FIFO occupancy structure,
  claim/stream/store-buffer structure, and relative memory due times.
  T must repeat exactly with the period.
* **LIN** (linear state): the cycle, instruction/memory/stream
  counters, stream cursors (address / remaining / JNI counter), store
  claim addresses and reservation credits.  LIN must advance by a
  constant per-period delta vector.
* **data** (everything else: FP registers, FIFO element values,
  in-flight read values).  Data is *not* required to be periodic — it
  is recomputed exactly by superop replay.

Static eligibility guarantees data cannot influence timing: no FP
compares or FP conditional jumps, no ``d2i``, no divide/modulo (traps),
no loads, no integer-FIFO pops, no stream (re)activation or stop
inside the body, forward-only branches.  Under those bans the timing
state evolves independently of data values, so two verified
consecutive period pairs with equal LIN deltas extend by induction:
each of the next ``n`` periods takes exactly ``C`` cycles and moves
every LIN slot by its delta.

**The boundary cut is mid-pipeline.**  A boundary is observed at the
end of the cycle whose IFU tick took the back edge — by which point
the IFU has usually run on into the next iteration (free control ops,
inline conversions, at most one dispatched op), and the unit queues
may hold dispatched-but-unexecuted ops from earlier iterations.  The
replay aligns to that cut exactly:

* at entry it first executes the queued ops (per unit, in order —
  sound because the register banks are unit-private and conversions
  synchronize on empty queues), then runs the *rest* of the current
  iteration from the boundary pc;
* whole iterations in between run through the compiled superops;
* the final stretch runs op-by-op through per-op steps with undo
  recording, finishing with the next iteration's prefix up to the
  boundary pc, and then *undoes* the trailing ops of each unit that
  the real machine would still hold in its queue — reproducing the
  mid-pipeline register/FIFO image bit-exactly.

An advance is all-or-nothing: memory writes are collected in a journal
(address-disjoint across sources, order-preserved within one) and
applied only after every exit check passes — a failed replay leaves
the simulator completely untouched and the loop falls back to the
interpreter.  De-opt is conservative: the window stops
``MARGIN_ITERS`` iterations short of any stream/JNI exhaustion and two
periods short of the cycle limit, and anything unexpected (occupancy
drift, range trap, counter mismatch, unmodelable queue contents)
abandons fast-forward for the loop.

Per-run warm hints: the first verified advance stores the *earliest*
periodic boundary's full fingerprint (T + LIN + data), keyed by the
simulator parameters that influence timing.  A later plain run of the
same module — deterministically the same trajectory — matches it after
a handful of iterations and advances immediately, which is what makes
repeated benchmark runs cheap.

Equivalence discipline: ``SimResult`` (value, cycles, counters, data
segment) from a fast-forwarded run must be bit-identical to the
reference; ``tests/test_superops.py`` and the differential fuzzer
(``fastforward-mismatch`` findings) enforce it.
"""

from __future__ import annotations

import re
from collections import deque
from typing import Optional

import struct

from ..ir.interp import DATA_BASE, wrap32
from ..rtl.expr import BinOp, Imm, Reg, Sym, UnOp
from .decode import (
    E_ASSIGN, E_COMPARE, E_STORE,
    K_CONDJUMP, K_CVT, K_EXEC, K_JNI, K_JUMP, K_LABEL,
)
from .loopmap import loop_map_for

__all__ = ["LoopPlan", "SuperopCache", "FFEngine", "superop_cache_for",
           "MARGIN_ITERS", "MAX_PERIOD"]

#: iterations left un-forwarded before any stream/JNI exhaustion
MARGIN_ITERS = 2
#: boundary fingerprints kept per loop before giving up on a period
MAX_BOUNDARIES = 220
#: longest boundary period the detector will match
MAX_PERIOD = 64
#: whole iterations run op-by-op (with undo recording) at window end;
#: must span at least the deepest unit-queue backlog a boundary holds
STRETCH_BODIES = 2


class _Reject(Exception):
    """Loop not eligible for superop compilation."""


class _Bail(Exception):
    """Replay left the proven-periodic envelope; abandon the advance."""


def _sext8(value) -> int:
    value = int(value) & 0xFF
    return value - 0x100 if value >= 0x80 else value


# ------------------------------------------------------------------ codegen --

_INT_WRAP_OPS = {"+", "-", "*", "&", "|", "^"}
_CMP_OPS = {"==", "!=", "<", "<=", ">", ">="}


def _expr_src(expr, bank: str, ctx: dict) -> str:
    """Compile an operand Expr to Python source with the evaluation
    order and numeric semantics of the decoded evaluators.  With
    ``ctx['direct']`` registers are read as ``R[i]``/``F[i]``
    subscripts (step mode); otherwise as cached locals (block mode)."""
    if isinstance(expr, Imm):
        return repr(expr.value)
    if isinstance(expr, Reg):
        if expr.bank != bank:
            raise _Reject("cross-bank register read")
        if expr.index == 31:
            return "0.0" if bank == "f" else "0"
        if expr.index in (0, 1):
            if bank != "f":
                raise _Reject("integer FIFO pop feeds timing state")
            name = f"pop_{expr.bank}{expr.index}"
            ctx["state_keys"].add(name)
            ctx["pop_keys"].add((expr.bank, expr.index))
            return f"{name}()"
        if ctx.get("direct"):
            return f"{'F' if bank == 'f' else 'R'}[{expr.index}]"
        ctx["reads"].add((bank, expr.index))
        return f"{bank}{expr.index}"
    if isinstance(expr, Sym):
        base = ctx["globals_base"].get(expr.name)
        if base is None:
            raise _Reject(f"unknown symbol {expr.name!r}")
        return repr(base + expr.offset)
    if isinstance(expr, BinOp):
        left = _expr_src(expr.left, bank, ctx)
        right = _expr_src(expr.right, bank, ctx)
        op = expr.op
        if bank == "f":
            if op in ("+", "-", "*"):
                return f"(float({left}) {op} float({right}))"
            raise _Reject(f"fp operator {op} may trap")
        if op in _INT_WRAP_OPS:
            return _wrap_src(f"{left} {op} {right}")
        if op == "<<":
            return _wrap_src(f"{left} << {_shift_amount(right)}")
        if op == ">>":
            return f"({left} >> {_shift_amount(right)})"
        raise _Reject(f"int operator {op} may trap")
    if isinstance(expr, UnOp):
        operand = _expr_src(expr.operand, bank, ctx)
        if expr.op == "neg":
            return f"(-{operand})" if bank == "f" else _wrap_src(f"-{operand}")
        if expr.op == "not":
            return _wrap_src(f"~{operand}")
        if expr.op == "sext8":
            return f"_sext8({operand})"
        raise _Reject(f"unary operator {expr.op}")
    raise _Reject(f"cannot compile {expr!r}")


_INT_LIT = re.compile(r"-?\d+")


def _wrap_src(e: str) -> str:
    """Inline, branchless source form of ``wrap32(e)``: mask to 32 bits
    then recentre on the sign bit.  Saves a Python call per arithmetic
    op in the hottest generated code."""
    return f"((({e}) & 0xFFFFFFFF ^ 0x80000000) - 0x80000000)"


def _shift_amount(right: str) -> str:
    """The ``& 31`` shift-amount mask, constant-folded for literals."""
    if _INT_LIT.fullmatch(right):
        return repr(int(right) & 31)
    return f"({right} & 31)"


def _is_int_pure(value: str) -> bool:
    """True when an r-bank expression source already yields an in-range
    int, making an outer ``wrap32(int(...))`` a no-op.  Every form
    ``_expr_src`` can emit for bank 'r' qualifies — wrapping ops emit
    the inline wrap, ``>>``/``_sext8`` cannot leave the range, register
    reads hold the invariant, pops and cross-bank reads are rejected —
    except an out-of-range ``Imm`` literal."""
    if _INT_LIT.fullmatch(value):
        return -0x80000000 <= int(value) < 0x80000000
    return True


def _is_float_pure(value: str) -> bool:
    """True when the expression source already yields a float (making
    an outer ``float(...)`` a no-op): an f-bank BinOp (operands are
    float()-wrapped inside) or an explicit float() call."""
    return value.startswith("(float(") or value.startswith("float(")


class _BlockGen:
    """Accumulates statements for one basic-block superop."""

    def __init__(self, bid: int) -> None:
        self.bid = bid
        self.lines: list = []
        self.reads: set = set()
        self.writes: set = set()
        self.state_keys: set = set()
        self.closed = False

    def stmt(self, line: str) -> None:
        self.lines.append(line)


class LoopPlan:
    """Static analysis + compiled superops for one eligible loop."""

    __slots__ = ("header", "end", "jni_key", "lin_regs", "eq_index",
                 "pop_keys", "push_keys", "store_keys", "bind",
                 "steps", "dop_index", "source")

    def __init__(self, header: int, end: int, jni_key) -> None:
        self.header = header
        self.end = end
        self.jni_key = jni_key
        self.lin_regs: tuple = ()
        self.eq_index: tuple = ()
        self.pop_keys: frozenset = frozenset()
        self.push_keys: frozenset = frozenset()
        self.store_keys: frozenset = frozenset()
        self.bind = None
        self.steps: dict = {}
        self.dop_index: dict = {}
        self.source: str = ""


def _analyze_loop(dops, info, globals_base) -> Optional[LoopPlan]:
    header, end = info.header, info.end
    d_end = dops[end]
    if d_end.kind != K_JNI or d_end.target != header:
        return None
    try:
        return _build_plan(dops, header, end, d_end.key, globals_base)
    except _Reject:
        return None


def _build_plan(dops, header, end, jni_key, globals_base) -> LoopPlan:
    plan = LoopPlan(header, end, jni_key)
    span = range(header, end)

    # -- pass 1: eligibility + register classification -----------------------
    linear_writes: dict = {}      # reg index -> every write is r +/- Imm
    compare_reads: set = set()
    for i in span:
        d = dops[i]
        kind = d.kind
        if kind == K_LABEL:
            continue
        if kind == K_JUMP:
            if not (i < d.target <= end):
                raise _Reject("jump leaves the loop body")
            continue
        if kind == K_CONDJUMP:
            if d.feu:
                raise _Reject("fp condition feeds timing state")
            if not (i < d.target <= end):
                raise _Reject("conditional branch exits the body")
            continue
        if kind == K_CVT:
            if d.d2i:
                raise _Reject("d2i may trap")
            if d.needs:
                raise _Reject("conversion pops a FIFO")
            continue
        if kind != K_EXEC:
            raise _Reject("call/ret/jni inside the body")
        ekind = d.ekind
        if ekind == E_ASSIGN:
            if d.dst_bank == "r":
                src = d.instr.src
                linear = (isinstance(src, BinOp) and src.op in ("+", "-")
                          and isinstance(src.left, Reg)
                          and src.left.bank == "r"
                          and src.left.index == d.dst_index
                          and isinstance(src.right, Imm))
                prev = linear_writes.get(d.dst_index, True)
                linear_writes[d.dst_index] = prev and linear
            continue
        if ekind == E_COMPARE:
            if d.feu:
                raise _Reject("fp compare feeds timing state")
            if d.needs:
                raise _Reject("FIFO pop feeds a compare")
            instr = d.instr
            for side in (instr.left, instr.right):
                for idx in _walk_int_regs(side):
                    compare_reads.add(idx)
            continue
        if ekind == E_STORE:
            if d.needs:
                raise _Reject("FIFO pop feeds a store address")
            continue
        raise _Reject("load/stream op inside the body")

    # Linear registers advance by a constant per iteration and may grow
    # without bound; everything a compare reads must instead be exactly
    # value-periodic (it steers control flow, i.e. timing).
    lin = {r for r, ok in linear_writes.items() if ok} - compare_reads
    plan.lin_regs = tuple(sorted(lin))
    plan.eq_index = tuple(i for i in range(32) if i not in lin)

    # -- pass 2: block structure + statement generation ----------------------
    leaders = {header, end}       # the JNI closes its own terminal block
    for i in span:
        d = dops[i]
        if d.kind in (K_JUMP, K_CONDJUMP):
            leaders.add(d.target)
            leaders.add(i + 1)
    order = sorted(x for x in leaders if header <= x <= end)
    bid_of = {pc: bid for bid, pc in enumerate(order)}

    ctx = {"globals_base": globals_base, "pop_keys": set(),
           "state_keys": None, "reads": None}
    push_keys: set = set()
    store_keys: set = set()
    gens: list = []
    for bid, start in enumerate(order):
        g = _BlockGen(bid)
        gens.append(g)
        ctx["state_keys"] = g.state_keys
        ctx["reads"] = g.reads
        stop = order[bid + 1] if bid + 1 < len(order) else end + 1
        pc = start
        while pc < stop and not g.closed:
            _gen_dop(dops[pc], g, ctx, bid_of, push_keys, store_keys)
            pc += 1
        if not g.closed:
            nxt = bid_of.get(stop)
            if nxt is None:
                raise _Reject("fall-through leaves the loop body")
            g.stmt(f"return {nxt}")
    plan.pop_keys = frozenset(ctx["pop_keys"])
    plan.push_keys = frozenset(push_keys)
    plan.store_keys = frozenset(store_keys)

    # -- pass 3: emit + compile ----------------------------------------------
    # Two-stage: ``_bind(S)`` closes every block over the replay state
    # once, so the hot per-block calls take only (R, F) and touch state
    # through closure cells instead of dict lookups.
    all_state = sorted(set().union(*(g.state_keys for g in gens))
                       if gens else ())
    src = ["def _make(env):",
           " wrap32 = env['wrap32']",
           " _sext8 = env['_sext8']",
           " def _bind(S):"]
    for key in all_state:
        src.append(f"  {key} = S['{key}']")
    for g in gens:
        src.append(f"  def blk{g.bid}(R, F):")
        for bank, idx in sorted(g.reads):
            src.append(f"   {bank}{idx} = "
                       f"{'F' if bank == 'f' else 'R'}[{idx}]")
        wb = [f"{'F' if bank == 'f' else 'R'}[{idx}] = {bank}{idx}"
              for bank, idx in sorted(g.writes)]
        for line in (g.lines or ["pass"]):
            indent = "   " + line[:len(line) - len(line.lstrip())]
            stmt = line.strip()
            if stmt.startswith("return"):
                for w in wb:
                    src.append(indent + w)
            src.append(indent + stmt)
    src.append("  return (" + ", ".join(f"blk{g.bid}" for g in gens)
               + ",)")
    src.append(" return _bind")
    plan.source = "\n".join(src) + "\n"
    namespace: dict = {}
    exec(compile(plan.source, f"<superop:{header}>", "exec"), namespace)
    plan.bind = namespace["_make"]({"wrap32": wrap32, "_sext8": _sext8})

    plan.steps = _build_steps(dops, plan, globals_base)
    return plan


def _walk_int_regs(expr):
    stack = [expr]
    while stack:
        node = stack.pop()
        if isinstance(node, Reg):
            if node.bank == "r" and node.index not in (0, 1, 31):
                yield node.index
        elif isinstance(node, BinOp):
            stack.append(node.right)
            stack.append(node.left)
        elif isinstance(node, UnOp):
            stack.append(node.operand)


def _gen_dop(d, g: _BlockGen, ctx, bid_of, push_keys, store_keys) -> None:
    kind = d.kind
    if kind == K_LABEL:
        return
    if kind == K_JUMP:
        g.stmt(f"return {_target_bid(d.target, bid_of)}")
        g.closed = True
        return
    if kind == K_CONDJUMP:
        g.state_keys.add("ccr")
        test = "ccr.popleft()" if d.sense else "not ccr.popleft()"
        g.stmt(f"if {test}:")
        g.stmt(f" return {_target_bid(d.target, bid_of)}")
        return                    # falls into the trailing return
    if kind == K_JNI:
        g.stmt("return -1")
        g.closed = True
        return
    if kind == K_CVT:
        # i2d only (d2i rejected): int operand, coerced float result;
        # both the FIFO-push and register forms push the coerced value.
        raw = _expr_src(d.instr.src.operand, "r", ctx)
        _gen_write(d, g, f"float({raw})", coerced=True,
                   push_keys=push_keys)
        return
    ekind = d.ekind
    if ekind == E_ASSIGN:
        bank = "f" if d.feu else "r"
        value = _expr_src(d.instr.src, bank, ctx)
        _gen_write(d, g, value, coerced=False, push_keys=push_keys)
        return
    if ekind == E_COMPARE:
        instr = d.instr
        if instr.op not in _CMP_OPS:
            raise _Reject(f"compare operator {instr.op}")
        left = _expr_src(instr.left, "r", ctx)
        right = _expr_src(instr.right, "r", ctx)
        g.state_keys.add("ccr")
        g.stmt(f"ccr.append(bool({left} {instr.op} {right}))")
        return
    if ekind == E_STORE:
        addr = _expr_src(d.instr.addr, "f" if d.feu else "r", ctx)
        key = d.fifo_key
        name = f"cl_{key[0]}{key[1]}"
        g.state_keys.add(name)
        store_keys.add(key)
        g.stmt(f"{name}.append(({addr}, {d.width}, {d.fp!r}))")
        return
    raise _Reject("op kind not supported by superops")


def _target_bid(target: int, bid_of) -> int:
    bid = bid_of.get(target)
    if bid is None:
        raise _Reject("branch target is not a block leader")
    return bid


def _gen_write(d, g: _BlockGen, value: str, coerced: bool,
               push_keys) -> None:
    if d.fifo_key is not None:
        key = d.fifo_key
        name = f"out_{key[0]}{key[1]}"
        g.state_keys.add(name)
        push_keys.add(key)
        g.stmt(f"{name}.append({value})")     # raw push, as out.push()
        return
    if d.dst_bank is None:
        g.stmt(value)             # register-31 sink: evaluate, discard
        return
    reg = f"{d.dst_bank}{d.dst_index}"
    if d.dst_bank == "f":
        if coerced or _is_float_pure(value):
            g.stmt(f"{reg} = {value}")
        else:
            g.stmt(f"{reg} = float({value})")
    elif _is_int_pure(value):
        g.stmt(f"{reg} = {value}")
    else:
        g.stmt(f"{reg} = wrap32(int({value}))")
    g.writes.add((d.dst_bank, d.dst_index))


# -- per-op steps -------------------------------------------------------------
#
# One closure per DOp, ``step(R, F, S) -> next absolute pc`` (-1 at the
# back edge), with registers read/written through R/F subscripts and
# every mutation recorded into S['_U'] as an undo entry:
#   ('s', seq, idx, old)  -> seq[idx] = old          (subscript write)
#   ('a', deq)            -> deq.pop()               (append)
#   ('l', deq, value)     -> deq.appendleft(value)   (popleft)
# Steps carry the boundary cut: queued-op pre-execution, the partial
# entry iteration, and the undo-recorded final stretch all run through
# them; the hot middle of the window uses the compiled blocks.

def _build_steps(dops, plan: LoopPlan, globals_base) -> dict:
    src = ["def _make(env):",
           " wrap32 = env['wrap32']",
           " _sext8 = env['_sext8']"]
    names = []
    ctx = {"globals_base": globals_base, "direct": True,
           "pop_keys": set(), "state_keys": None, "reads": set()}
    for i in range(plan.header, plan.end + 1):
        d = dops[i]
        state_keys: set = set()
        ctx["state_keys"] = state_keys
        body = _step_lines(d, i, ctx, state_keys)
        name = f"step_{i}"
        names.append((i, name))
        src.append(f" def {name}(R, F, S):")
        for key in sorted(state_keys):
            src.append(f"  {key} = S['{key}']")
        for line in body:
            indent = "  " + line[:len(line) - len(line.lstrip())]
            src.append(indent + line.strip())
    items = ", ".join(f"{i}: {name}" for i, name in names)
    src.append(" return {" + items + "}")
    namespace: dict = {}
    exec(compile("\n".join(src) + "\n", f"<steps:{plan.header}>", "exec"),
         namespace)
    return namespace["_make"]({"wrap32": wrap32, "_sext8": _sext8})


def _step_lines(d, i: int, ctx, state_keys) -> list:
    kind = d.kind
    nxt = f"return {i + 1}"
    if kind == K_LABEL:
        return [nxt]
    if kind == K_JUMP:
        return [f"return {d.target}"]
    if kind == K_CONDJUMP:
        # IFU-resident: never pending in a unit queue, so the popleft
        # needs no undo record (see the stretch-undo argument below).
        state_keys.add("ccr")
        test = "ccr.popleft()" if d.sense else "not ccr.popleft()"
        return [f"if {test}:", f" return {d.target}", nxt]
    if kind == K_JNI:
        return ["return -1"]
    if kind == K_CVT:
        raw = _expr_src(d.instr.src.operand, "r", ctx)
        return _step_write(d, f"float({raw})", state_keys) + [nxt]
    ekind = d.ekind
    if ekind == E_ASSIGN:
        bank = "f" if d.feu else "r"
        value = _expr_src(d.instr.src, bank, ctx)
        if d.fifo_key is None and d.dst_bank == "f":
            if not _is_float_pure(value):
                value = f"float({value})"
        elif d.fifo_key is None and d.dst_bank == "r":
            if not _is_int_pure(value):
                value = f"wrap32(int({value}))"
        return _step_write(d, value, state_keys) + [nxt]
    if ekind == E_COMPARE:
        instr = d.instr
        left = _expr_src(instr.left, "r", ctx)
        right = _expr_src(instr.right, "r", ctx)
        state_keys.add("ccr")
        state_keys.add("_U")
        return ["_U.append(('a', ccr))",
                f"ccr.append(bool({left} {instr.op} {right}))", nxt]
    if ekind == E_STORE:
        addr = _expr_src(d.instr.addr, "f" if d.feu else "r", ctx)
        key = d.fifo_key
        name = f"cl_{key[0]}{key[1]}"
        state_keys.add(name)
        state_keys.add("_U")
        return [f"_U.append(('a', {name}))",
                f"{name}.append(({addr}, {d.width}, {d.fp!r}))", nxt]
    raise _Reject("op kind not supported by superops")


def _step_write(d, value: str, state_keys) -> list:
    state_keys.add("_U")
    if d.fifo_key is not None:
        key = d.fifo_key
        name = f"out_{key[0]}{key[1]}"
        state_keys.add(name)
        return [f"_U.append(('a', {name}))", f"{name}.append({value})"]
    if d.dst_bank is None:
        return [value]            # register-31 sink: evaluate, discard
    seq = "F" if d.dst_bank == "f" else "R"
    idx = d.dst_index
    return [f"_U.append(('s', {seq}, {idx}, {seq}[{idx}]))",
            f"{seq}[{idx}] = {value}"]


# ------------------------------------------------------------- module cache --

class SuperopCache:
    """Per-module superop plans + per-parameter fast-forward hints.

    Lives on the RtlModule as ``_superop_cache``, beside the decode and
    loop-map caches.  ``plans`` depends only on the instruction list and
    the (size-independent) data layout; ``hints`` is keyed by every
    simulator parameter that influences timing, so a hint can never
    leak between configurations."""

    def __init__(self, plans: dict) -> None:
        self.plans = plans            # back-edge pc -> LoopPlan
        self.hints: dict = {}         # params key -> {back-edge pc: _Hint}
        self.last_ff_stats: dict = {}  # most recent plain run's coverage

    def install(self, dops) -> None:
        for end, plan in self.plans.items():
            dops[end].ff = plan
            plan.dop_index = {id(dops[i]): i
                              for i in range(plan.header, plan.end)}


def superop_cache_for(sim) -> Optional[SuperopCache]:
    module = sim.module
    cache = getattr(module, "_superop_cache", None)
    if cache is None:
        program, dops = sim.program, sim._dops
        loopmap = loop_map_for(module, program, dops)
        loops = loopmap.loops[1:]
        plans = {}
        for info in loops:
            if any(other.parent == info.lid for other in loops):
                continue              # not innermost
            plan = _analyze_loop(dops, info, sim.memory.globals_base)
            if plan is not None:
                plans[plan.end] = plan
        cache = SuperopCache(plans)
        module._superop_cache = cache
    # The decode cache can be rebuilt independently of this cache (perf
    # tests clear it); re-mark the back edges on whatever dops we have.
    cache.install(sim._dops)
    return cache if cache.plans else None


# --------------------------------------------------------------- the engine --

class _LoopState:
    __slots__ = ("plan", "boundaries", "by_hash", "count", "done",
                 "advanced", "windows", "period")

    def __init__(self, plan: LoopPlan) -> None:
        self.plan = plan
        self.boundaries: list = []    # (T, LIN, data) per taken back edge
        self.by_hash: dict = {}       # hash(T) -> [boundary indices]
        self.count = 0
        self.done = False
        self.advanced = 0             # iterations skipped analytically
        self.windows = 0
        self.period = 0


class _Hint:
    __slots__ = ("index", "T", "lin", "data", "period", "deltas")

    def __init__(self, index, T, lin, data, period, deltas) -> None:
        self.index = index
        self.T = T
        self.lin = lin
        self.data = data
        self.period = period
        self.deltas = deltas


class _Puller:
    """Lazy in-FIFO source for replay: buffered + in-flight values
    first, then fresh element reads along the stream cursor."""

    __slots__ = ("buf", "addr", "stride", "width", "fp", "remaining",
                 "fresh", "sink", "_read")

    def __init__(self, buf, stream, read_value) -> None:
        self.buf = buf
        self.addr = stream.addr
        self.stride = stream.stride
        self.width = stream.width
        self.fp = stream.fp
        self.remaining = stream.remaining
        self.fresh = 0
        self.sink = None              # undo sink during the stretch
        self._read = read_value

    def pop(self):
        if not self.buf:
            self.pull_fresh()
        value = self.buf.popleft()
        if self.sink is not None:
            self.sink.append(("l", self.buf, value))
        return value

    def pull_fresh(self) -> None:
        if self.remaining is not None and self.remaining <= 0:
            raise _Bail()
        # signed=True exactly as _tick_stream_in issues its reads
        self.buf.append(self._read(self.addr, self.width, self.fp, True))
        self.addr += self.stride
        if self.remaining is not None:
            self.remaining -= 1
        self.fresh += 1


def _run_iteration(blocks, R, F) -> None:
    b = 0
    while b >= 0:
        b = blocks[b](R, F)


class FFEngine:
    """Per-run fast-forward driver for the plain fast loop."""

    def __init__(self, sim, cache: SuperopCache,
                 advance: bool = True) -> None:
        self.sim = sim
        self.cache = cache
        self.advance_enabled = advance
        self.loops: dict = {}
        self.params_key = (sim.memory.size, sim.memory.latency,
                           sim.memory.ports,
                           sim.in_fifos[("f", 0)].capacity)
        self.stats: dict = {}

    # ------------------------------------------------------------- boundary --
    def on_boundary(self, plan: LoopPlan) -> None:
        if not self.advance_enabled:
            return                    # superop tier alone: no detection
        st = self.loops.get(plan.end)
        if st is None:
            st = self.loops[plan.end] = _LoopState(plan)
        if st.done:
            return
        st.count += 1
        if st.count > MAX_BOUNDARIES:
            st.done = True
            return
        fp = self._fingerprint(plan)
        if fp is None:
            st.done = True
            return
        T, lin = fp
        data = self._data_fp()
        index = len(st.boundaries)
        st.boundaries.append((T, lin, data))

        # Warm path: a previous identical run (same module + parameters
        # means deterministically the same trajectory) pinned its
        # earliest periodic boundary; a full-state match lets this run
        # advance right there, long before cold detection could.
        hints = self.cache.hints.get(self.params_key)
        hint = hints.get(plan.end) if hints else None
        if hint is not None and index == hint.index and T == hint.T \
                and lin == hint.lin and data == hint.data:
            if self._advance(plan, st, hint.period, hint.deltas):
                return

        # Cold path: a period candidate is a same-T earlier boundary;
        # verified when two consecutive period pairs have identical
        # LIN delta vectors with positive cycle motion.
        h = hash(T)
        prior = st.by_hash.get(h)
        if prior is not None:
            for j in reversed(prior[-6:]):
                p = index - j
                if p > MAX_PERIOD:
                    break
                jj = j - p
                if jj < 0:
                    continue
                T1, lin1, _data1 = st.boundaries[j]
                if T1 != T:
                    continue
                T0, lin0, _data0 = st.boundaries[jj]
                if T0 != T:
                    continue
                d1 = tuple(b - a for a, b in zip(lin0, lin1))
                d2 = tuple(b - a for a, b in zip(lin1, lin))
                if d1 != d2 or d2[0] <= 0:
                    continue
                if self._advance(plan, st, p, d2, hint_at=jj):
                    return
                break
        st.by_hash.setdefault(h, []).append(index)

    # ---------------------------------------------------------- fingerprint --
    def _fingerprint(self, plan: LoopPlan):
        """(T, LIN) at this boundary, or None if the machine holds state
        the engine cannot prove periodic / reconstruct (scalar loads in
        flight, open-ended streams, FEU flags pending)."""
        sim = self.sim
        cyc = sim.cycle
        ieu, feu = sim.ieu, sim.feu
        if feu.cc_fifo:
            return None
        regs = ieu.regs
        lin = [cyc, sim.dispatched, ieu.executed, feu.executed,
               sim.memory.reads, sim.memory.writes, sim.stream_elements,
               sim._progress_cycle]
        lin.extend(regs[i] for i in plan.lin_regs)
        t: list = [plan.end, sim.pc,
                   tuple(regs[i] for i in plan.eq_index),
                   tuple(ieu.cc_fifo),
                   max(ieu.busy_until - cyc, 0),
                   max(feu.busy_until - cyc, 0),
                   _queue_sig(ieu.queue), _queue_sig(feu.queue)]
        streams = sim.streams
        state_key = {}
        for key in sorted(streams):
            s = streams[key]
            if s.active and s.remaining is None:
                return None           # open-ended stream: never forward
            t.append((key, s.kind, s.active, s.stride, s.width, s.fp,
                      s.inflight))
            lin.append(s.addr)
            lin.append(s.remaining or 0)
            lin.append(s.jni_counter or 0)
            state_key[id(s)] = key
        for key in sorted(sim.in_fifos):
            fifo = sim.in_fifos[key]
            fifo._advance()
            t.append((key, tuple((len(src.buffer), src.closed,
                                  src.quota is None)
                                 for src in fifo._sources)))
            lin.extend((src.quota - src.delivered)
                       if src.quota is not None else 0
                       for src in fifo._sources)
        for key in sorted(sim.out_fifos):
            t.append((key, len(sim.out_fifos[key]._data)))
        for key in sorted(sim.out_claims):
            sig = []
            for claim in sim.out_claims[key]:
                if claim[0] == "stream":
                    sig.append("o")
                else:
                    sig.append(("s", claim[2], claim[3]))
                    lin.append(claim[1])
            t.append((key, tuple(sig)))
        t.append(tuple(key for key, _claim in sim.store_buffer))
        inflight_sig = []
        for due, cb, _value in sim.memory._inflight:
            owner = getattr(cb, "__defaults__", None)
            if not owner or id(owner[0]) not in state_key:
                return None           # scalar load (or unknown) in flight
            inflight_sig.append((due - cyc, state_key[id(owner[0])]))
        t.append(tuple(inflight_sig))
        return tuple(t), tuple(lin)

    def _data_fp(self) -> tuple:
        sim = self.sim
        data: list = [tuple(sim.feu.regs)]
        for key in sorted(sim.in_fifos):
            for src in sim.in_fifos[key]._sources:
                data.append(tuple(src.buffer))
        for key in sorted(sim.out_fifos):
            data.append(tuple(sim.out_fifos[key]._data))
        data.append(tuple(v for _due, _cb, v in sim.memory._inflight))
        return tuple(data)

    def _stream_base(self, plan: LoopPlan) -> dict:
        """Stream key -> LIN vector position of its (addr, remaining,
        jni) triple; mirrors _fingerprint's append order exactly."""
        pos = 8 + len(plan.lin_regs)
        base = {}
        for key in sorted(self.sim.streams):
            base[key] = pos
            pos += 3
        return base

    # -------------------------------------------------------------- advance --
    def _advance(self, plan: LoopPlan, st: _LoopState, period: int,
                 deltas: tuple, hint_at: Optional[int] = None) -> bool:
        sim = self.sim
        C = deltas[0]
        if C <= 0:
            return False
        stream_base = self._stream_base(plan)

        # Window size: whole periods, every counter kept clear of
        # exhaustion (MARGIN_ITERS floor) and two periods of cycle
        # headroom so a cycle-limit raise happens interpreted.
        n = (sim.max_cycles - sim.cycle - 2 * C) // C
        for key in sorted(sim.streams):
            s = sim.streams[key]
            base = stream_base[key]
            d_rem = deltas[base + 1]
            d_jni = deltas[base + 2]
            if d_rem > 0 or d_jni > 0:
                return False          # counters only ever decrease
            if d_jni:
                avail = ((s.jni_counter or 0) - MARGIN_ITERS) // -d_jni
                if avail < n:
                    n = avail
            if d_rem and s.remaining is not None:
                # landing remaining stays >= 2: the >0 threshold the
                # prefetcher tests is never crossed inside the window
                avail = (s.remaining - 2) // -d_rem
                if avail < n:
                    n = avail
            moving = bool(deltas[base] or d_rem or d_jni)
            if not s.active:
                if moving:
                    return False
                continue
            known = (s.kind == "in"
                     and (s.bank, s.index) in plan.pop_keys) or \
                    (s.kind == "out"
                     and (s.bank, s.index) in plan.push_keys)
            if not known and (moving or (s.kind == "in" and s.inflight)):
                return False          # a stream the replay cannot model
        if n < 1 or n * period < 2:
            return False

        # Range guards: every moving stream stays in bounds across the
        # window, and moving in-stream read windows never overlap
        # out-stream write windows (a read could otherwise observe a
        # journaled-but-deferred write).  Loops mixing in-streams with
        # scalar stores are rejected outright for the same reason.
        mem = sim.memory
        in_ranges, out_ranges = [], []
        for key in sorted(sim.streams):
            s = sim.streams[key]
            d_rem = deltas[stream_base[key] + 1]
            if not s.active or not d_rem:
                continue
            elements = -d_rem * n
            first = s.addr
            last = s.addr + s.stride * (elements - 1)
            lo = min(first, last)
            hi = max(first, last) + s.width
            try:
                mem._check(lo, hi - lo)
            except Exception:
                return False
            (in_ranges if s.kind == "in" else out_ranges).append((lo, hi))
        for ilo, ihi in in_ranges:
            for olo, ohi in out_ranges:
                if ilo < ohi and olo < ihi:
                    return False
        if in_ranges and plan.store_keys:
            return False
        for key in plan.store_keys:
            for claim in sim.out_claims[key]:
                if claim[0] == "stream":
                    return False      # mixed store/stream drain order

        committed = self._replay(plan, st, period, n, deltas, stream_base)
        if committed and hint_at is not None:
            T0, lin0, data0 = st.boundaries[hint_at]
            self.cache.hints.setdefault(self.params_key, {})[plan.end] = \
                _Hint(hint_at, T0, lin0, data0, period, deltas)
        return committed

    # --------------------------------------------------------------- replay --
    def _replay(self, plan: LoopPlan, st: _LoopState, period: int,
                n: int, deltas: tuple, stream_base: dict) -> bool:
        """Execute the window's ``n * period`` iterations on
        materialized state, phase-aligned to the mid-pipeline boundary
        cut, then commit the closed-form advance.  All-or-nothing: the
        journal is applied only after every exit check passes, so a
        False return leaves the simulator completely untouched."""
        sim = self.sim
        dops = sim._dops
        mem = sim.memory
        total = n * period

        # Queued-but-unexecuted ops at the cut, per unit, in order.
        # Anything that is not a body DOp (link writes, prologue
        # leftovers) makes the cut unreconstructable.
        dop_index = plan.dop_index
        pend_ieu: list = []
        pend_feu: list = []
        for queue, pend in ((sim.ieu.queue, pend_ieu),
                            (sim.feu.queue, pend_feu)):
            for item in queue:
                idx = dop_index.get(id(item))
                if idx is None:
                    return False
                pend.append(idx)
        entry_pc = sim.pc
        if not plan.header <= entry_pc <= plan.end:
            return False

        R = list(sim.ieu.regs)
        F = list(sim.feu.regs)
        ccr = deque(sim.ieu.cc_fifo)
        U: list = []
        S: dict = {"ccr": ccr, "_U": U}

        # In-FIFO pullers: visible buffer, then in-flight values in
        # issue order, then fresh reads along the stream cursor.
        inflight_values: dict = {}
        for _due, cb, value in mem._inflight:
            owner = cb.__defaults__
            inflight_values.setdefault(id(owner[0]), []).append(value)
        pullers: dict = {}
        for key in sorted(plan.pop_keys):
            fifo = sim.in_fifos[key]
            if len(fifo._sources) != 1:
                return False
            res = fifo._sources[0]
            stream = sim.streams.get((key[0], key[1], "in"))
            if stream is None or not stream.active or res.closed \
                    or res.quota is None or stream.reservation is not res:
                return False
            buf = deque(res.buffer)
            buf.extend(inflight_values.get(id(stream), ()))
            puller = _Puller(buf, stream, mem.read_value)
            pullers[key] = (puller, res, stream, len(res.buffer),
                            len(buf))
            S[f"pop_{key[0]}{key[1]}"] = puller.pop
        pulled_ids = {id(entry[2]) for entry in pullers.values()}
        for sid in inflight_values:
            if sid not in pulled_ids:
                return False          # in-flight read we would orphan

        # Out FIFOs: local deques with the boundary occupancy as the
        # drain floor — per-period push == drain in steady state, so the
        # backlog shape survives every period (checked at the end).
        outs: dict = {}
        for key in sorted(plan.push_keys | plan.store_keys):
            fifo = sim.out_fifos[key]
            claims = [(c[1], c[2], c[3])
                      for c in sim.out_claims[key] if c[0] != "stream"]
            outs[key] = {
                "data": deque(fifo._data), "floor": len(fifo._data),
                "claims": deque(claims), "claim_floor": len(claims),
            }
            S[f"out_{key[0]}{key[1]}"] = outs[key]["data"]
            S[f"cl_{key[0]}{key[1]}"] = outs[key]["claims"]
        out_streams: dict = {}
        for skey in sorted(sim.streams):
            s = sim.streams[skey]
            if s.kind != "out" or not s.active:
                continue
            key = (s.bank, s.index)
            if key not in outs:
                continue
            claims = sim.out_claims[key]
            if not claims or claims[0][0] != "stream" or \
                    claims[0][1] is not s:
                return False
            out_streams[key] = {"stream": s, "addr": s.addr}

        blocks = plan.bind(S)
        steps = plan.steps
        journal: list = []
        stretch = min(STRETCH_BODIES, total - 1)
        try:
            # Entry: pending queued ops first (banks are unit-private
            # and conversions synchronize on empty queues, so per-unit
            # program order is the only order that matters), then the
            # rest of the current iteration from the boundary pc.
            for idx in pend_feu:
                steps[idx](R, F, S)
            for idx in pend_ieu:
                steps[idx](R, F, S)
            pc = entry_pc
            while pc >= 0:
                pc = steps[pc](R, F, S)
            self._drain(outs, out_streams, journal)

            # Hot middle: whole iterations through the compiled blocks.
            # Draining once afterwards is equivalent to draining every
            # iteration: pairing and cursor order are FIFO either way.
            for _ in range(total - 1 - stretch):
                _run_iteration(blocks, R, F)
            self._drain(outs, out_streams, journal)

            # Final stretch: op-by-op with undo recording, ending with
            # the next iteration's prefix up to the cut, after which
            # the trailing ops of each unit are undone — they are the
            # ones the real machine still holds dispatched-but-
            # unexecuted at the landing boundary.  No draining here:
            # an undone push must never reach the journal.
            del U[:]
            for entry in pullers.values():
                entry[0].sink = U
            rec: list = []            # (unit, undo-start, undo-end)
            for body in range(stretch + 1):
                pc = plan.header
                while True:
                    if body == stretch and pc == entry_pc:
                        break         # reached the cut
                    d = dops[pc]
                    mark = len(U)
                    nxt = steps[pc](R, F, S)
                    if d.kind == K_EXEC:
                        rec.append(("F" if d.feu else "I",
                                    mark, len(U)))
                    if nxt < 0:
                        if body == stretch:
                            raise _Bail()   # cut not on this path
                        break
                    pc = nxt
            for entry in pullers.values():
                entry[0].sink = None
            # The rightmost K_EXEC records per unit are the pending
            # ops: dispatch is in-order, so a unit's queue holds its
            # most recently dispatched ops, and a free op or inline
            # CVT after them could not have issued (the IFU would
            # stall on the non-empty queue / missing flag), so no
            # later mutation aliases the undone containers.
            undo_spans: list = []
            for unit, count in (("I", len(pend_ieu)),
                                ("F", len(pend_feu))):
                found = 0
                for j in range(len(rec) - 1, -1, -1):
                    if found == count:
                        break
                    if rec[j][0] == unit:
                        undo_spans.append(rec[j])
                        found += 1
                if found != count:
                    raise _Bail()
            for _unit, lo, hi in sorted(undo_spans,
                                        key=lambda span: -span[1]):
                for k in range(hi - 1, lo - 1, -1):
                    u = U[k]
                    tag = u[0]
                    if tag == "s":
                        u[1][u[2]] = u[3]
                    elif tag == "a":
                        u[1].pop()
                    else:
                        u[1].appendleft(u[2])
            self._drain(outs, out_streams, journal)
        except Exception:
            return False              # any surprise: advance abandoned

        # Exit checks: issue counts must land exactly on the closed form
        # and every occupancy must have returned to its boundary shape.
        for key, (puller, res, stream, entry_buf, entry_total) in \
                pullers.items():
            issues = -deltas[stream_base[(stream.bank, stream.index,
                                          "in")] + 1] * n
            try:
                while puller.fresh < issues:
                    puller.pull_fresh()
            except _Bail:
                return False
            if puller.fresh != issues or len(puller.buf) != entry_total:
                return False
        for key, o in outs.items():
            if len(o["data"]) != o["floor"] or \
                    len(o["claims"]) != o["claim_floor"]:
                return False

        # Journal safety: overlapping writes are allowed only within
        # one source (whose internal order the journal preserves);
        # cross-source overlap would need the reference's cycle-level
        # interleaving.  Every address must also be in range — an
        # out-of-range store must trap interpreted, at its own cycle.
        spans: dict = {}
        mem_size = mem.size
        split = mem._dirty_split
        dirty_data = 0
        dirty_stack = mem_size
        for addr, width, _fp, _value, skey in journal:
            end = addr + width
            if addr < DATA_BASE or end > mem_size:
                return False
            if addr >= split:
                if addr < dirty_stack:
                    dirty_stack = addr
            elif end > dirty_data:
                dirty_data = end
            spans.setdefault(skey, []).append((addr, end))
        if len(spans) > 1:
            merged = []
            for skey, ranges in spans.items():
                ranges.sort()
                lo, hi = ranges[0]
                for rlo, rhi in ranges[1:]:
                    if rlo > hi:
                        merged.append((lo, hi, skey))
                        lo, hi = rlo, rhi
                    else:
                        hi = max(hi, rhi)
                merged.append((lo, hi, skey))
            merged.sort()
            for (alo, ahi, akey), (blo, bhi, bkey) in zip(merged,
                                                          merged[1:]):
                if blo < ahi and akey != bkey:
                    return False

        data = mem.data
        pack = struct.pack
        for addr, width, fp, value, _skey in journal:
            if fp:
                raw = pack("<d", float(value))
            elif width == 1:
                raw = pack("<B", int(value) & 0xFF)
            elif width == 2:
                raw = pack("<H", int(value) & 0xFFFF)
            else:
                raw = pack("<I", int(value) & 0xFFFFFFFF)
            data[addr:addr + width] = raw
        dirty = mem._dirty
        if dirty_data > dirty[0]:
            dirty[0] = dirty_data
        if dirty_stack < dirty[1]:
            dirty[1] = dirty_stack
        self._commit(plan, st, period, n, deltas, stream_base, R, F,
                     ccr, pullers, outs)
        return True

    @staticmethod
    def _drain(outs, out_streams, journal) -> None:
        """Drain each output FIFO down to its boundary floor: values to
        the draining out-stream's cursor, or paired FIFO-order with
        pending store claims.  Within a key this is the reference
        pairing (front claim, front value); cross-key apply order is
        covered by the journal's ownership check."""
        for key, o in outs.items():
            data = o["data"]
            floor = o["floor"]
            osd = out_streams.get(key)
            if osd is not None:
                s = osd["stream"]
                while len(data) > floor:
                    journal.append((osd["addr"], s.width, s.fp,
                                    data.popleft(), key))
                    osd["addr"] += s.stride
                continue
            claims = o["claims"]
            cfloor = o["claim_floor"]
            while len(claims) > cfloor and len(data) > floor:
                addr, width, fp = claims.popleft()
                journal.append((addr, width, fp, data.popleft(), key))

    # --------------------------------------------------------------- commit --
    def _commit(self, plan: LoopPlan, st: _LoopState, period: int,
                n: int, deltas: tuple, stream_base: dict, R, F, ccr,
                pullers, outs) -> None:
        sim = self.sim
        boundary_cycle = sim.cycle
        skipped_cycles = deltas[0] * n
        rel_ieu = max(sim.ieu.busy_until - boundary_cycle, 0)
        rel_feu = max(sim.feu.busy_until - boundary_cycle, 0)
        sim.cycle += skipped_cycles
        sim.dispatched += deltas[1] * n
        sim.ieu.executed += deltas[2] * n
        sim.feu.executed += deltas[3] * n
        sim.memory.reads += deltas[4] * n
        sim.memory.writes += deltas[5] * n
        sim.stream_elements += deltas[6] * n
        sim._progress_cycle += deltas[7] * n
        if rel_ieu:
            sim.ieu.busy_until = sim.cycle + rel_ieu
        if rel_feu:
            sim.feu.busy_until = sim.cycle + rel_feu

        sim.ieu.regs[:] = R
        sim.feu.regs[:] = F
        sim.ieu.cc_fifo.clear()
        sim.ieu.cc_fifo.extend(ccr)
        # Unit queues and pc are untouched: the landing cut holds the
        # same DOp objects pending (their replayed effects were undone
        # above) and the same in-iteration pc, so the interpreted tail
        # resumes exactly where a cycle-stepped machine would stand.

        # Stream cursors: replayed exactly for pulled in-streams, the
        # closed form for everything else (the exit checks proved they
        # agree where both apply).
        pulled_stream_keys = {(entry[2].bank, entry[2].index, "in")
                              for entry in pullers.values()}
        for key in sorted(sim.streams):
            s = sim.streams[key]
            base = stream_base[key]
            if s.jni_counter is not None:
                s.jni_counter += deltas[base + 2] * n
            if key in pulled_stream_keys:
                continue
            s.addr += deltas[base] * n
            if s.remaining is not None:
                s.remaining += deltas[base + 1] * n

        # In-FIFOs: the first slice of the surviving values is the
        # visible buffer; the tail re-enters flight with the boundary's
        # relative due times, preserving the original inter-stream
        # delivery order entry by entry.
        if pullers:
            by_stream_id = {}
            for key, (puller, res, stream, entry_buf, _total) in \
                    pullers.items():
                issues = -deltas[stream_base[(stream.bank, stream.index,
                                              "in")] + 1] * n
                res.delivered += issues
                buf = puller.buf
                visible = [buf.popleft() for _ in range(entry_buf)]
                res.buffer.clear()
                res.buffer.extend(visible)
                sim.in_fifos[key]._buffered = len(visible)
                stream.addr = puller.addr
                stream.remaining = puller.remaining
                by_stream_id[id(stream)] = \
                    (buf, _make_deliver(sim, stream, res))
            rebuilt = deque()
            for due, cb, _value in sim.memory._inflight:
                tail, deliver = by_stream_id[id(cb.__defaults__[0])]
                rebuilt.append((due - boundary_cycle + sim.cycle,
                                deliver, tail.popleft()))
            sim.memory._inflight.clear()
            sim.memory._inflight.extend(rebuilt)

        # Out FIFOs, store claims, and the store buffer (claim list
        # objects must stay shared between out_claims and store_buffer).
        for key, o in outs.items():
            fifo = sim.out_fifos[key]
            fifo._data.clear()
            fifo._data.extend(o["data"])
            claims = sim.out_claims[key]
            stream_claims = [c for c in claims if c[0] == "stream"]
            new_claims = [["store", addr, width, fp]
                          for addr, width, fp in o["claims"]]
            claims.clear()
            claims.extend(stream_claims)
            claims.extend(new_claims)
            if new_claims:
                fresh = iter(new_claims)
                rebuilt_sb = deque()
                for bkey, old in sim.store_buffer:
                    rebuilt_sb.append(
                        (bkey, next(fresh)) if bkey == key
                        else (bkey, old))
                sim.store_buffer.clear()
                sim.store_buffer.extend(rebuilt_sb)

        st.advanced += n * period
        st.windows += 1
        st.period = period
        st.done = True                # the tail runs interpreted
        self.stats[plan.header] = {
            "header": plan.header, "iterations": st.advanced,
            "windows": st.windows, "period": period,
            "cycles": skipped_cycles,
        }
        self.cache.last_ff_stats = dict(self.stats)


def _make_deliver(sim, state, reservation):
    """Replacement in-stream delivery callback, behaviorally identical
    (plain mode: ``state.stats`` is None) to the closure
    _tick_stream_in builds — including the ``__defaults__`` layout the
    fingerprint uses for ownership."""
    def deliver(value, state=state, reservation=reservation):
        state.inflight -= 1
        if reservation.closed:
            return
        reservation.deliver(value)
        sim.stream_elements += 1
    return deliver


def _queue_sig(queue) -> tuple:
    # DOp identity is stable for a module (decode is cached), so id()
    # is a sound per-process structural signature; link writes compare
    # by their return pc.
    return tuple(("L", item[1]) if type(item) is tuple else id(item)
                 for item in queue)
