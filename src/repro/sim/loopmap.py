"""Compile-time pc -> loop table for the cycle profiler.

The ledger (:mod:`repro.sim.telemetry`) attributes every simulated cycle
to a ``(loop, cause)`` pair.  The *loop* half of the key comes from this
module: a static map from absolute instruction index to the innermost
enclosing loop, derived from the flattened program alone — backward
branches (``Jump``/``CondJump``/``JNIf`` whose resolved target is at or
before the branch) delimit loop bodies, exactly the spans the IFU
re-traverses at run time.  Building the table at decode time keeps the
per-cycle attribution a single list index in the simulator, identical
on the fast and the reference paths.

Loop identity is the header label, which matches the ``loop`` anchor of
optimization remarks (``loop.header.label`` in the passes) so profiler
rows join against ``repro explain`` output and the static headroom
bounds (:mod:`repro.opt.bounds`) by name.

Loop id 0 is the ``<outside>`` sentinel: cycles spent at instructions
not enclosed by any loop (prologue, epilogue, straight-line glue).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..rtl.instr import Label, StreamIn, StreamOut
from .decode import K_CONDJUMP, K_JNI, K_JUMP

__all__ = ["LoopInfo", "LoopMap", "build_loop_map", "loop_map_for"]


@dataclass
class LoopInfo:
    """One natural loop of the flattened program."""

    lid: int
    function: str
    label: str          # header label name ("<outside>" for lid 0)
    header: int         # absolute index of the header label (-1 for lid 0)
    end: int            # absolute index of the last back-edge instruction
    depth: int = 0      # nesting depth (1 = outermost)
    parent: int = 0     # lid of the enclosing loop (0 = outside)
    streamed: bool = False
    #: source-line span covered by the body (0, 0) when unknown
    lno_range: tuple = (0, 0)
    #: provenance histogram: Instr.origin tag -> count over the body
    origins: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "lid": self.lid,
            "function": self.function,
            "label": self.label,
            "depth": self.depth,
            "parent": self.parent,
            "streamed": self.streamed,
            "lines": list(self.lno_range),
            "origins": dict(sorted(self.origins.items())),
        }


class LoopMap:
    """The pc -> loop table plus the loop records themselves."""

    def __init__(self, loops: list[LoopInfo], loop_of: list[int]) -> None:
        self.loops = loops          # indexed by lid; loops[0] is <outside>
        self.loop_of = loop_of      # absolute index -> innermost lid

    def loop_at(self, index: int) -> LoopInfo:
        if 0 <= index < len(self.loop_of):
            return self.loops[self.loop_of[index]]
        return self.loops[0]


def build_loop_map(program, dops) -> LoopMap:
    """Derive the loop table from a loaded program + its decode."""
    n = len(program.instrs)
    # Function ranges: entry index -> name, sorted by start.
    starts = sorted((index, name) for name, index in program.entry_of.items())

    def function_of(index: int) -> str:
        name = ""
        for start, fn in starts:
            if start > index:
                break
            name = fn
        return name

    # Backward branches delimit loop bodies; merge spans per header.
    spans: dict[int, int] = {}
    for i, d in enumerate(dops):
        if d.kind in (K_JUMP, K_CONDJUMP, K_JNI) and d.target <= i:
            spans[d.target] = max(spans.get(d.target, -1), i)

    sentinel = LoopInfo(0, "", "<outside>", -1, -1)
    loops = [sentinel]
    # Outermost first (larger spans), stable on header order.
    ordered = sorted(spans.items(), key=lambda hv: (hv[1] - hv[0], -hv[0]),
                     reverse=True)
    for header, end in ordered:
        instr = program.instrs[header]
        label = instr.name if isinstance(instr, Label) else f"@{header}"
        loops.append(LoopInfo(len(loops), function_of(header), label,
                              header, end))

    # Innermost-wins paint (outer loops were appended first).
    loop_of = [0] * n
    for info in loops[1:]:
        for index in range(info.header, info.end + 1):
            loop_of[index] = info.lid

    # Nesting: the parent is the smallest strictly-containing span.
    for info in loops[1:]:
        parent = 0
        for other in loops[1:]:
            if other is info:
                continue
            if other.header <= info.header and info.end <= other.end:
                if parent == 0 or \
                        (other.header >= loops[parent].header and
                         other.end <= loops[parent].end):
                    parent = other.lid
        info.parent = parent
    for info in loops[1:]:
        depth = 1
        walk = info
        while walk.parent:
            depth += 1
            walk = loops[walk.parent]
        info.depth = depth

    # Body facts: streamed flag, source lines, provenance histogram.
    for info in loops[1:]:
        lo = hi = 0
        for index in range(info.header, info.end + 1):
            d = dops[index]
            if d.kind == K_JNI or isinstance(d.instr, (StreamIn, StreamOut)):
                info.streamed = True
            origin = d.instr.origin
            if origin:
                info.origins[origin] = info.origins.get(origin, 0) + 1
                if origin.startswith("streaming"):
                    info.streamed = True
            lno = d.instr.lno
            if lno:
                lo = lno if not lo else min(lo, lno)
                hi = max(hi, lno)
        info.lno_range = (lo, hi)
    return LoopMap(loops, loop_of)


def loop_map_for(module, program, dops) -> LoopMap:
    """The module's loop map, cached beside the decode cache (the table
    depends only on the instruction list, like the decode itself)."""
    cached = getattr(module, "_loopmap_cache", None)
    if cached is None:
        cached = build_loop_map(program, dops)
        module._loopmap_cache = cached
    return cached
