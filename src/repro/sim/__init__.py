"""Cycle-level WM architecture simulator."""

from .fifo import FifoError, InFifo, OutFifo, Reservation
from .loader import Program, load_program
from .machine import SimError, SimResult, WMSimulator, simulate
from .memory import MemError, MemorySystem
from .telemetry import FifoStats, SimTelemetry, StreamStats, UnitStats

__all__ = [
    "FifoError", "InFifo", "OutFifo", "Reservation",
    "Program", "load_program",
    "SimError", "SimResult", "WMSimulator", "simulate",
    "MemError", "MemorySystem",
    "FifoStats", "SimTelemetry", "StreamStats", "UnitStats",
]
