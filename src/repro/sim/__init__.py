"""Cycle-level WM architecture simulator."""

from .decode import DOp, decode_module, decode_program
from .errors import SimError
from .fifo import FifoError, InFifo, OutFifo, Reservation
from .loader import Program, load_program
from .machine import SimResult, WMSimulator, simulate
from .memory import MemError, MemorySystem, SimMemoryView
from .telemetry import FifoStats, SimTelemetry, StreamStats, UnitStats

__all__ = [
    "DOp", "decode_module", "decode_program",
    "FifoError", "InFifo", "OutFifo", "Reservation",
    "Program", "load_program",
    "SimError", "SimResult", "WMSimulator", "simulate",
    "MemError", "MemorySystem", "SimMemoryView",
    "FifoStats", "SimTelemetry", "StreamStats", "UnitStats",
]
