"""Instruction pre-decode for the WM cycle simulator.

The reference simulator (:class:`repro.sim.machine.WMSimulator` with
``slow=True``) re-discovers everything about an instruction on every
cycle it is considered: ``isinstance`` chains pick the handler,
``walk()`` re-traverses the operand :class:`~repro.rtl.expr.Expr` trees
to count FIFO reads, ``_eval`` recurses over the same trees to compute
values, and ``_cost`` walks them a third time for multi-cycle operator
costs.  For a loop that runs thousands of cycles this is pure
re-computation — the program never changes after ``load_program``.

This module compiles each RTL instruction **once**, at load time, into a
:class:`DOp` record:

* an integer opcode for the IFU (``K_*``) and, for execution-unit
  instructions, for the unit's dispatcher (``E_*``) — replacing the
  ``isinstance`` chains;
* operand *evaluator closures* ``fn(unit, sim)`` built over the
  ``_INT_BIN``/``_CMP`` operator tables, replacing ``_eval``'s
  recursion (FIFO pops happen inside the closures, in exactly the
  reference evaluation order);
* the pre-computed FIFO-operand needs (``_operands_ready``), extra
  occupancy cycles (``_cost``), and branch targets resolved to absolute
  instruction indices.

The decoded program depends only on the instruction list — not on the
memory layout or simulator parameters — so it is cached on the
:class:`~repro.rtl.module.RtlModule` and shared by every simulation of
the same compiled program (see :func:`decode_module`).

Correctness contract: for every program the decoded fast path must
produce a :class:`~repro.sim.machine.SimResult` bit-identical to the
``slow=True`` reference, including error cycles and telemetry
attribution.  ``tests/test_perf_equivalence.py`` enforces this over the
whole benchmark suite.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..ir.interp import c_div, c_rem, wrap32
from ..machine.wm import CVT_OPS, WMLoadIssue, WMStoreIssue, unit_of
from ..rtl.expr import BinOp, Expr, Imm, Mem, Reg, Sym, UnOp, VReg, walk
from ..rtl.instr import (
    Assign, Call, Compare, CondJump, Jump, JumpStreamNotDone, Label, Ret,
    StreamIn, StreamOut, StreamStop,
)
from .errors import SimError
from .loader import Program

__all__ = [
    "DOp", "decode_program", "decode_module",
    "K_LABEL", "K_JUMP", "K_CONDJUMP", "K_JNI", "K_CALL", "K_RET",
    "K_CVT", "K_EXEC",
    "E_ASSIGN", "E_LOAD", "E_STORE", "E_COMPARE", "E_SIN", "E_SOUT",
    "E_SSTOP", "E_BAD",
    "_INT_BIN", "_CMP", "_OP_COST",
]

# -- operator tables ----------------------------------------------------------

_INT_BIN = {
    "+": lambda a, b: wrap32(a + b),
    "-": lambda a, b: wrap32(a - b),
    "*": lambda a, b: wrap32(a * b),
    "/": lambda a, b: wrap32(c_div(a, b)),
    "%": lambda a, b: wrap32(c_rem(a, b)),
    "<<": lambda a, b: wrap32(a << (b & 31)),
    ">>": lambda a, b: a >> (b & 31),
    "&": lambda a, b: wrap32(a & b),
    "|": lambda a, b: wrap32(a | b),
    "^": lambda a, b: wrap32(a ^ b),
}

_CMP = {
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}

#: extra occupancy cycles for expensive operators
_OP_COST = {
    ("r", "*"): 3, ("r", "/"): 15, ("r", "%"): 15,
    ("f", "*"): 1, ("f", "/"): 10,
}

# -- opcodes ------------------------------------------------------------------

K_LABEL = 0      # fall through, free
K_JUMP = 1       # unconditional, free
K_CONDJUMP = 2   # dequeue a CC flag, maybe branch
K_JNI = 3        # jump while the stream is not exhausted
K_CALL = 4       # dispatch the link write, enter the function
K_RET = 5        # drain, then return through r30
K_CVT = 6        # cross-bank conversion (synchronizing)
K_EXEC = 7       # dispatch to the IEU/FEU

E_ASSIGN = 0
E_LOAD = 1
E_STORE = 2
E_COMPARE = 3
E_SIN = 4
E_SOUT = 5
E_SSTOP = 6
E_BAD = 7


class DOp:
    """One decoded instruction.

    A flat record: which fields are meaningful depends on ``kind`` /
    ``ekind``.  Records are immutable after decode and shared between
    simulator instances of the same module.
    """

    __slots__ = (
        "kind",        # IFU opcode (K_*)
        "ekind",       # execution-unit opcode (E_*) for K_EXEC records
        "instr",       # the original Instr (stream metadata, error text)
        "feu",         # True: dispatch target / CC producer is the FEU
        "target",      # branch target / call entry as an absolute index
        "sense",       # CondJump branch sense
        "key",         # (bank, index, kind) stream key (JNI / SSTOP)
        "stream_key",  # dispatch-generation key for SIN/SOUT dispatch
        "needs",       # tuple ((bank, fifo_index), count): FIFO operands
        "ev",          # evaluator closure fn(unit, sim)
        "ev2",         # second evaluator (stream count), or None
        "fifo_key",    # (bank, index) FIFO this op reads into / writes
        "dst_bank",    # destination register bank, None = no write
        "dst_index",   # destination register index
        "busy_extra",  # extra occupancy cycles charged on execute
        "width", "fp", "signed",
        "d2i",         # K_CVT: True for d2i, False for i2d
        "ff",          # K_JNI: LoopPlan when the loop has superops
    )

    def __init__(self, kind: int, instr) -> None:
        self.kind = kind
        self.instr = instr
        self.ekind = E_BAD
        self.feu = False
        self.target = 0
        self.sense = False
        self.key = None
        self.stream_key = None
        self.needs = ()
        self.ev = None
        self.ev2 = None
        self.fifo_key = None
        self.dst_bank = None
        self.dst_index = 0
        self.busy_extra = 0
        self.width = 0
        self.fp = False
        self.signed = True
        self.d2i = False
        self.ff = None

    def __repr__(self) -> str:  # debugging aid only
        return f"<DOp k={self.kind} e={self.ekind} {self.instr!r}>"


# -- expression compilation ---------------------------------------------------

def _raiser(message: str) -> Callable:
    def ev(unit, sim):
        raise SimError(message)
    return ev


def _compile_expr(expr: Expr, bank: str) -> Callable:
    """Compile ``expr`` into ``fn(unit, sim) -> value``.

    The closure performs exactly the reads (including FIFO pops, in
    reference evaluation order: left before right, depth first) and
    raises exactly the errors of ``WMSimulator._eval`` on a unit of
    ``bank``.
    """
    if isinstance(expr, Imm):
        value = expr.value
        return lambda unit, sim: value
    if isinstance(expr, Reg):
        if expr.bank != bank:
            reg = expr

            def ev_cross(unit, sim):
                raise SimError(
                    f"{unit.name} read of cross-bank register {reg!r}")
            return ev_cross
        if expr.index == 31:
            zero = 0.0 if bank == "f" else 0
            return lambda unit, sim: zero
        if expr.index in (0, 1):
            key = (expr.bank, expr.index)
            return lambda unit, sim: sim.in_fifos[key].pop()
        index = expr.index
        return lambda unit, sim: unit.regs[index]
    if isinstance(expr, Sym):
        name = expr.name
        offset = expr.offset

        def ev_sym(unit, sim):
            try:
                return sim.memory.globals_base[name] + offset
            except KeyError:
                raise SimError(f"unknown symbol {name!r}") from None
        return ev_sym
    if isinstance(expr, BinOp):
        left = _compile_expr(expr.left, bank)
        right = _compile_expr(expr.right, bank)
        op = expr.op
        if bank == "f":
            return _compile_fp_bin(op, left, right)
        fn = _INT_BIN.get(op)
        if fn is None:
            def ev_badop(unit, sim):
                left(unit, sim)
                right(unit, sim)
                raise KeyError(op)  # as the reference table lookup does
            return ev_badop
        return lambda unit, sim: fn(left(unit, sim), right(unit, sim))
    if isinstance(expr, UnOp):
        operand = _compile_expr(expr.operand, bank)
        op = expr.op
        if op == "neg":
            def ev_neg(unit, sim):
                value = operand(unit, sim)
                return -value if isinstance(value, float) \
                    else wrap32(-value)
            return ev_neg
        if op == "not":
            return lambda unit, sim: wrap32(~operand(unit, sim))
        if op == "sext8":
            def ev_sext(unit, sim):
                value = int(operand(unit, sim)) & 0xFF
                return value - 0x100 if value >= 0x80 else value
            return ev_sext

        def ev_badun(unit, sim):
            operand(unit, sim)
            raise SimError(f"unit cannot evaluate {op}")
        return ev_badun
    if isinstance(expr, VReg):
        return _raiser("virtual register survived to simulation")
    return _raiser(f"cannot evaluate {expr!r}")


def _compile_fp_bin(op: str, left: Callable, right: Callable) -> Callable:
    if op == "+":
        return lambda unit, sim: \
            float(left(unit, sim)) + float(right(unit, sim))
    if op == "-":
        return lambda unit, sim: \
            float(left(unit, sim)) - float(right(unit, sim))
    if op == "*":
        return lambda unit, sim: \
            float(left(unit, sim)) * float(right(unit, sim))
    if op == "/":
        def ev_div(unit, sim):
            a = float(left(unit, sim))
            b = float(right(unit, sim))
            if b == 0.0:
                raise SimError("floating-point division by zero")
            return a / b
        return ev_div

    def ev_bad(unit, sim):
        left(unit, sim)
        right(unit, sim)
        raise SimError(f"illegal FP operator {op}")
    return ev_bad


def _compile_compare(instr: Compare) -> Callable:
    bank = instr.bank
    left = _compile_expr(instr.left, bank)
    right = _compile_expr(instr.right, bank)
    fn = _CMP.get(instr.op)
    if fn is None:
        op = instr.op

        def ev_badcmp(unit, sim):
            left(unit, sim)
            right(unit, sim)
            raise KeyError(op)
        return ev_badcmp
    return lambda unit, sim: bool(fn(left(unit, sim), right(unit, sim)))


def _fifo_needs(exprs: list, bank: str) -> tuple:
    """Pre-computed ``_operands_ready`` facts: how many elements each
    input FIFO of ``bank`` must hold before these operands can be read
    atomically."""
    needed: dict[tuple, int] = {}
    for expr in exprs:
        for node in walk(expr):
            if isinstance(node, Reg) and node.index in (0, 1) and \
                    node.bank == bank:
                key = (node.bank, node.index)
                needed[key] = needed.get(key, 0) + 1
    return tuple(needed.items())


def _cost_extra(expr: Expr, bank: str) -> int:
    """Extra unit-occupancy cycles beyond the first (``_cost`` - 1)."""
    cost = 1
    for node in walk(expr):
        if isinstance(node, BinOp):
            cost = max(cost, _OP_COST.get((bank, node.op), 1))
    return cost - 1


def _decode_dst(d: DOp, dst) -> None:
    """Classify an Assign/CVT destination: FIFO push, register write, or
    the register-31 sink (value evaluated and discarded)."""
    if isinstance(dst, Reg) and dst.index in (0, 1):
        d.fifo_key = (dst.bank, dst.index)
    elif isinstance(dst, (Reg, VReg)):
        if dst.index != 31:
            d.dst_bank = dst.bank
            d.dst_index = dst.index
    else:
        d.ekind = E_BAD


# -- instruction decode -------------------------------------------------------

def decode_program(program: Program) -> list[DOp]:
    """Decode every instruction of a loaded program."""
    return [_decode(instr, program) for instr in program.instrs]


def _decode(instr, program: Program) -> DOp:
    if isinstance(instr, Label):
        return DOp(K_LABEL, instr)
    if isinstance(instr, Jump):
        d = DOp(K_JUMP, instr)
        d.target = program.label_index[instr.target]
        return d
    if isinstance(instr, CondJump):
        d = DOp(K_CONDJUMP, instr)
        d.feu = instr.bank == "f"
        d.sense = instr.sense
        d.target = program.label_index[instr.target]
        return d
    if isinstance(instr, JumpStreamNotDone):
        d = DOp(K_JNI, instr)
        d.key = (instr.fifo.bank, instr.fifo.index, instr.kind)
        d.target = program.label_index[instr.target]
        return d
    if isinstance(instr, Call):
        d = DOp(K_CALL, instr)
        d.target = program.entry_of[instr.func]
        return d
    if isinstance(instr, Ret):
        return DOp(K_RET, instr)
    if unit_of(instr) == "CVT":
        return _decode_cvt(instr)
    return _decode_exec(instr)


def _decode_cvt(instr: Assign) -> DOp:
    d = DOp(K_CVT, instr)
    src = instr.src
    assert isinstance(src, UnOp) and src.op in CVT_OPS
    d.d2i = src.op == "d2i"
    src_bank = "f" if d.d2i else "r"
    operand = src.operand
    if isinstance(operand, Reg):
        d.ev = _compile_expr(operand, src_bank)
    else:
        d.ev = _raiser(f"cannot evaluate conversion operand {operand!r}")
    d.needs = _fifo_needs([operand], src_bank)
    _decode_dst(d, instr.dst)
    return d


def _decode_exec(instr) -> DOp:
    d = DOp(K_EXEC, instr)
    unit = unit_of(instr)
    if unit == "SCU":
        unit = "IEU"  # stream instructions execute on the IEU in order
    d.feu = unit == "FEU"
    bank = "f" if d.feu else "r"
    if isinstance(instr, Compare):
        d.ekind = E_COMPARE
        d.needs = _fifo_needs([instr.left, instr.right], bank)
        d.ev = _compile_compare(instr)
        return d
    if isinstance(instr, WMLoadIssue):
        d.ekind = E_LOAD
        d.needs = _fifo_needs([instr.addr], bank)
        d.ev = _compile_expr(instr.addr, bank)
        d.width = instr.width
        d.fp = instr.fp
        d.signed = instr.signed
        d.fifo_key = (instr.bank, 0)
        return d
    if isinstance(instr, WMStoreIssue):
        d.ekind = E_STORE
        d.needs = _fifo_needs([instr.addr], bank)
        d.ev = _compile_expr(instr.addr, bank)
        d.width = instr.width
        d.fp = instr.fp
        d.fifo_key = (instr.bank, 0)
        return d
    if isinstance(instr, (StreamIn, StreamOut)):
        kind = "in" if isinstance(instr, StreamIn) else "out"
        d.ekind = E_SIN if kind == "in" else E_SOUT
        d.stream_key = (instr.fifo.bank, instr.fifo.index, kind)
        d.ev = _compile_expr(instr.base, bank)
        d.ev2 = None if instr.count is None \
            else _compile_expr(instr.count, bank)
        return d
    if isinstance(instr, StreamStop):
        d.ekind = E_SSTOP
        d.key = (instr.fifo.bank, instr.fifo.index, instr.kind)
        return d
    if isinstance(instr, Assign):
        d.ekind = E_ASSIGN
        d.needs = _fifo_needs([instr.src], bank)
        d.ev = _compile_expr(instr.src, bank)
        d.busy_extra = 1 if isinstance(instr.src, Sym) \
            else _cost_extra(instr.src, bank)
        _decode_dst(d, instr.dst)
        return d
    d.ekind = E_BAD
    return d


# -- module-level cache -------------------------------------------------------

def decode_module(module, loader) -> tuple:
    """Load + decode ``module``, caching ``(Program, [DOp])`` on it.

    The decoded form depends only on the instruction list, which is
    immutable once compilation has finished, so every simulation of the
    same module (any memory latency / port count / telemetry setting)
    shares one decode.
    """
    cached = getattr(module, "_decoded_cache", None)
    if cached is not None:
        return cached
    program = loader(module)
    cached = (program, decode_program(program))
    module._decoded_cache = cached
    return cached
