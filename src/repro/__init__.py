"""repro: reproduction of Benitez & Davidson, "Code Generation for
Streaming: An Access/Execute Mechanism" (ASPLOS 1991).

A complete vertical slice of the paper's system, in pure Python:

* a Mini-C front end producing naive abstract machine code
  (:mod:`repro.frontend`, :mod:`repro.ir`);
* a vpo-style RTL optimizer (:mod:`repro.opt`) with the paper's two
  contributed algorithms — recurrence detection/optimization
  (:mod:`repro.recurrence`) and streaming code generation
  (:mod:`repro.streaming`);
* machine descriptions for WM, the Motorola 68020, and parametric
  scalar cost models (:mod:`repro.machine`);
* a cycle-level WM simulator with IFU/IEU/FEU/SCUs and data FIFOs
  (:mod:`repro.sim`);
* the paper's benchmark programs (:mod:`repro.benchsuite`) and
  harnesses regenerating every table and figure
  (:mod:`repro.reporting`).

Quick start::

    from repro.compiler import compile_source
    result = compile_source(open("prog.c").read())
    print(result.listing())
    print(result.simulate().cycles)
"""

from .compiler import CompileResult, compile_source, compile_to_ir, scalar_options
from .opt import OptOptions

__version__ = "1.0.0"

#: Compiler revision: part of every compile-cache key (in-process and
#: on-disk).  Bump on ANY change that can alter generated code or the
#: contents of a :class:`CompileResult` (new passes, codegen fixes,
#: report-schema changes), so persistent artifacts written by an older
#: compiler can never be served by a newer one.
__compiler_rev__ = 1

__all__ = [
    "CompileResult", "compile_source", "compile_to_ir", "scalar_options",
    "OptOptions", "__version__", "__compiler_rev__",
]
