"""Containers for compiled code: data objects, functions, modules.

These are the interchange structures between the code expander, the
optimizer, the back ends, and the simulators.  A :class:`RtlModule` is a
whole compilation unit: a symbol table of global data objects plus RTL
functions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from .instr import Instr

__all__ = ["DataObject", "RtlFunction", "RtlModule"]


@dataclass
class DataObject:
    """A global data object laid out in the simulated data segment.

    ``init`` holds the initial byte image (string literals, brace
    initializers); ``None`` means zero-initialized (BSS).
    """

    name: str
    size: int
    align: int = 8
    init: Optional[bytes] = None

    def image(self) -> bytes:
        """The object's initial contents, zero-padded to ``size``."""
        raw = self.init or b""
        if len(raw) > self.size:
            raise ValueError(f"init for {self.name} exceeds declared size")
        return raw + bytes(self.size - len(raw))


@dataclass
class RtlFunction:
    """One function's RTL code plus its frame metadata.

    ``instrs`` is the flat instruction list (with :class:`~repro.rtl.instr.Label`
    pseudo-instructions); the optimizer converts it to a CFG and back.
    ``frame_size`` is the byte size of the stack frame (locals + saves)
    established by the prologue the expander emits.
    """

    name: str
    instrs: list[Instr] = field(default_factory=list)
    frame_size: int = 0
    #: number of virtual registers handed out per bank, for allocators
    vreg_counts: dict[str, int] = field(default_factory=dict)

    def listing(self) -> str:
        """A plain repr listing (for debugging; back ends format real asm)."""
        lines = []
        for ins in self.instrs:
            text = repr(ins)
            if ins.comment:
                text = f"{text:<44} -- {ins.comment}"
            lines.append(text)
        return "\n".join(lines)


@dataclass
class RtlModule:
    """A compiled compilation unit: global data + functions."""

    functions: dict[str, RtlFunction] = field(default_factory=dict)
    data: dict[str, DataObject] = field(default_factory=dict)
    entry: str = "main"

    def add_function(self, fn: RtlFunction) -> None:
        self.functions[fn.name] = fn

    def add_data(self, obj: DataObject) -> None:
        self.data[obj.name] = obj

    def __getstate__(self) -> dict:
        # The simulator parks derived caches on the module as
        # underscore attributes (``_decoded_cache``, ``_superop_cache``,
        # ``_loopmap_cache``, ...).  They hold generated closures —
        # unpicklable, and process-specific anyway — so pickles carry
        # only the declared fields and loaders re-derive the caches on
        # first simulation.
        return {key: value for key, value in self.__dict__.items()
                if not key.startswith("_")}
