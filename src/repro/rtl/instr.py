"""RTL instructions.

An RTL instruction describes the complete effect of one machine
instruction as an assignment (or control transfer) over storage cells.
Any particular RTL is machine specific, but the *form* is machine
independent, which is what lets the optimizer transform machine code in a
machine-independent way.

Instructions are mutable objects: optimization passes rewrite operand
expressions in place via :meth:`Instr.map_exprs` and the CFG tracks them
by identity.  Every instruction carries a ``comment`` (mirroring the
listings in the paper) and an optional ``lno`` tag used by the recurrence
partition vectors ``(lno, acc, iv, cee, dee, roffset)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Union

from .expr import (
    BinOp,
    Expr,
    Imm,
    Mem,
    Reg,
    Sym,
    UnOp,
    VReg,
    contains_mem,
    regs_in,
)

__all__ = [
    "CCCell",
    "Cell",
    "Instr",
    "Assign",
    "Compare",
    "Jump",
    "CondJump",
    "Call",
    "Ret",
    "Label",
    "StreamIn",
    "StreamOut",
    "StreamStop",
    "JumpStreamNotDone",
    "is_load",
    "is_store",
]


@dataclass(frozen=True, slots=True)
class CCCell:
    """The condition-code FIFO of one execution unit ('r' or 'f').

    Modeled as a single dataflow cell: a :class:`Compare` defines it and
    the next :class:`CondJump` on the same unit uses it.  The compiler
    guarantees exactly one compare per conditional jump (a WM requirement).
    """

    bank: str

    def __repr__(self) -> str:
        return f"cc[{self.bank}]"


Cell = Union[Reg, VReg, CCCell]


class Instr:
    """Base class for RTL instructions."""

    __slots__ = ("comment", "lno")

    def __init__(self, comment: str = "", lno: int = 0) -> None:
        self.comment = comment
        self.lno = lno

    # -- dataflow interface -------------------------------------------------
    def defs(self) -> set[Cell]:
        """Register/CC cells written by this instruction."""
        return set()

    def uses(self) -> set[Cell]:
        """Register/CC cells read by this instruction."""
        return set()

    def use_exprs(self) -> list[Expr]:
        """The operand expressions evaluated by this instruction."""
        return []

    def map_exprs(self, fn: Callable[[Expr], Expr]) -> None:
        """Rewrite every operand expression in place with ``fn``.

        ``fn`` receives each *source* expression (including the address
        expression of a store destination) and returns its replacement.
        """

    def reads_mem(self) -> Optional[Mem]:
        """The memory cell read by this instruction, if any."""
        return None

    def writes_mem(self) -> Optional[Mem]:
        """The memory cell written by this instruction, if any."""
        return None

    def is_branch(self) -> bool:
        """True for instructions that may transfer control."""
        return False

    def branch_targets(self) -> list[str]:
        """Labels this instruction may jump to."""
        return []

    def falls_through(self) -> bool:
        """True if control may continue to the next instruction."""
        return True


class Assign(Instr):
    """``dst := src`` — the workhorse RTL.

    Covers ALU operations, register moves, address formation (``src`` a
    :class:`Sym`), loads (``src`` is exactly a :class:`Mem`) and stores
    (``dst`` is a :class:`Mem`).  The expander guarantees memory reads
    appear only as the *entire* right-hand side, so each Assign performs
    at most one memory access.
    """

    __slots__ = ("dst", "src")

    def __init__(self, dst: Expr, src: Expr, comment: str = "", lno: int = 0) -> None:
        super().__init__(comment, lno)
        self.dst = dst
        self.src = src

    def defs(self) -> set[Cell]:
        if isinstance(self.dst, (Reg, VReg)):
            return {self.dst}
        return set()

    def uses(self) -> set[Cell]:
        used = regs_in(self.src)
        if isinstance(self.dst, Mem):
            used |= regs_in(self.dst.addr)
        return used

    def use_exprs(self) -> list[Expr]:
        exprs = [self.src]
        if isinstance(self.dst, Mem):
            exprs.append(self.dst.addr)
        return exprs

    def map_exprs(self, fn: Callable[[Expr], Expr]) -> None:
        self.src = fn(self.src)
        if isinstance(self.dst, Mem):
            new_addr = fn(self.dst.addr)
            if new_addr is not self.dst.addr:
                self.dst = Mem(new_addr, self.dst.width, self.dst.fp, self.dst.signed)

    def reads_mem(self) -> Optional[Mem]:
        if isinstance(self.src, Mem):
            return self.src
        return None

    def writes_mem(self) -> Optional[Mem]:
        if isinstance(self.dst, Mem):
            return self.dst
        return None

    def __repr__(self) -> str:
        return f"{self.dst!r} := {self.src!r}"


def is_load(instr: Instr) -> bool:
    """True if ``instr`` is a register load from memory."""
    return isinstance(instr, Assign) and isinstance(instr.src, Mem)


def is_store(instr: Instr) -> bool:
    """True if ``instr`` stores to memory."""
    return isinstance(instr, Assign) and isinstance(instr.dst, Mem)


class Compare(Instr):
    """Evaluate a comparison and enqueue the result in a unit's CC FIFO.

    Written ``r[31] := (a op b)`` in WM listings: the compare is executed
    by the ``bank`` unit and its boolean result is buffered for the IFU.
    """

    __slots__ = ("bank", "op", "left", "right")

    def __init__(self, bank: str, op: str, left: Expr, right: Expr,
                 comment: str = "", lno: int = 0) -> None:
        super().__init__(comment, lno)
        self.bank = bank
        self.op = op
        self.left = left
        self.right = right

    def defs(self) -> set[Cell]:
        return {CCCell(self.bank)}

    def uses(self) -> set[Cell]:
        return regs_in(self.left) | regs_in(self.right)

    def use_exprs(self) -> list[Expr]:
        return [self.left, self.right]

    def map_exprs(self, fn: Callable[[Expr], Expr]) -> None:
        self.left = fn(self.left)
        self.right = fn(self.right)

    def reads_mem(self) -> Optional[Mem]:
        for e in (self.left, self.right):
            if isinstance(e, Mem):
                return e
        return None

    def __repr__(self) -> str:
        return f"{self.bank}cc := ({self.left!r} {self.op} {self.right!r})"


class Jump(Instr):
    """Unconditional branch, executed by the IFU at zero cost."""

    __slots__ = ("target",)

    def __init__(self, target: str, comment: str = "", lno: int = 0) -> None:
        super().__init__(comment, lno)
        self.target = target

    def is_branch(self) -> bool:
        return True

    def branch_targets(self) -> list[str]:
        return [self.target]

    def falls_through(self) -> bool:
        return False

    def __repr__(self) -> str:
        return f"jump {self.target}"


class CondJump(Instr):
    """Conditional branch: dequeue a CC from ``bank`` and jump on ``sense``.

    ``JumpIT`` (sense=True) in the paper's listings jumps when the queued
    compare produced true; ``JumpIF`` (sense=False) when it produced false.
    """

    __slots__ = ("bank", "sense", "target")

    def __init__(self, bank: str, sense: bool, target: str,
                 comment: str = "", lno: int = 0) -> None:
        super().__init__(comment, lno)
        self.bank = bank
        self.sense = sense
        self.target = target

    def uses(self) -> set[Cell]:
        return {CCCell(self.bank)}

    def is_branch(self) -> bool:
        return True

    def branch_targets(self) -> list[str]:
        return [self.target]

    def __repr__(self) -> str:
        mnem = "JumpIT" if self.sense else "JumpIF"
        return f"{mnem} {self.target} ({self.bank})"


class Call(Instr):
    """Call a function by symbol.

    ``arg_regs`` are the ABI registers carrying arguments (uses);
    ``ret_regs`` the registers defined by the call; ``clobbers`` the
    caller-saved set additionally killed.
    """

    __slots__ = ("func", "arg_regs", "ret_regs", "clobbers")

    def __init__(self, func: str, arg_regs: list[Expr], ret_regs: list[Expr],
                 clobbers: Optional[set[Expr]] = None,
                 comment: str = "", lno: int = 0) -> None:
        super().__init__(comment, lno)
        self.func = func
        self.arg_regs = list(arg_regs)
        self.ret_regs = list(ret_regs)
        self.clobbers = set(clobbers or ())

    def defs(self) -> set[Cell]:
        return set(self.ret_regs) | set(self.clobbers)

    def uses(self) -> set[Cell]:
        return set(self.arg_regs)

    def reads_mem(self) -> Optional[Mem]:
        # Conservatively, a call may read any memory; the passes treat
        # Call specially rather than through this accessor.
        return None

    def __repr__(self) -> str:
        return f"call {self.func}"


class Ret(Instr):
    """Return from the current function. ``live_out`` lists ABI registers
    (return value, callee-saved) that must be treated as used."""

    __slots__ = ("live_out",)

    def __init__(self, live_out: Optional[set[Expr]] = None,
                 comment: str = "", lno: int = 0) -> None:
        super().__init__(comment, lno)
        self.live_out = set(live_out or ())

    def uses(self) -> set[Cell]:
        return set(self.live_out)

    def is_branch(self) -> bool:
        return True

    def falls_through(self) -> bool:
        return False

    def __repr__(self) -> str:
        return "ret"


class Label(Instr):
    """A branch target in flat instruction lists (pseudo-instruction)."""

    __slots__ = ("name",)

    def __init__(self, name: str, comment: str = "", lno: int = 0) -> None:
        super().__init__(comment, lno)
        self.name = name

    def __repr__(self) -> str:
        return f"{self.name}:"


class _StreamBase(Instr):
    """Common operands of the stream instructions.

    A stream instruction specifies the FIFO to read/write, the base
    address, the count of memory accesses, and the stride between
    successive elements (all taken from registers except the stride,
    which is an immediate in the instruction word).
    """

    __slots__ = ("fifo", "base", "count", "stride", "width", "fp")

    def __init__(self, fifo: Reg, base: Expr, count: Expr, stride: int,
                 width: int, fp: bool, comment: str = "", lno: int = 0) -> None:
        super().__init__(comment, lno)
        self.fifo = fifo
        self.base = base
        self.count = count
        self.stride = stride
        self.width = width
        self.fp = fp

    def uses(self) -> set[Cell]:
        used = regs_in(self.base)
        if self.count is not None:
            used |= regs_in(self.count)
        return used

    def use_exprs(self) -> list[Expr]:
        if self.count is None:
            return [self.base]
        return [self.base, self.count]

    def map_exprs(self, fn: Callable[[Expr], Expr]) -> None:
        self.base = fn(self.base)
        if self.count is not None:
            self.count = fn(self.count)


class StreamIn(_StreamBase):
    """``SinD fifo,base,count,stride`` — stream memory into an input FIFO."""

    def __repr__(self) -> str:
        return (f"SIN {self.fifo!r},{self.base!r},{self.count!r},"
                f"{self.stride}")


class StreamOut(_StreamBase):
    """``SoutD fifo,base,count,stride`` — stream an output FIFO to memory."""

    def __repr__(self) -> str:
        return (f"SOUT {self.fifo!r},{self.base!r},{self.count!r},"
                f"{self.stride}")


class StreamStop(Instr):
    """Terminate an infinite stream bound to ``fifo`` (loop-exit cleanup).

    ``kind`` selects the input or output stream on that FIFO index.
    """

    __slots__ = ("fifo", "kind")

    def __init__(self, fifo: Reg, kind: str = "in", comment: str = "",
                 lno: int = 0) -> None:
        super().__init__(comment, lno)
        self.fifo = fifo
        self.kind = kind

    def __repr__(self) -> str:
        return f"SSTOP {self.fifo!r} ({self.kind})"


class JumpStreamNotDone(Instr):
    """``JNIfN label`` — jump while the stream on ``fifo`` is not exhausted.

    Executed by the IFU against the stream-status state maintained by the
    SCU, so like other IFU branches it costs no execution-unit cycles.
    ``kind`` selects the input or output stream on the FIFO index.
    """

    __slots__ = ("fifo", "target", "kind")

    def __init__(self, fifo: Reg, target: str, kind: str = "in",
                 comment: str = "", lno: int = 0) -> None:
        super().__init__(comment, lno)
        self.fifo = fifo
        self.target = target
        self.kind = kind

    def is_branch(self) -> bool:
        return True

    def branch_targets(self) -> list[str]:
        return [self.target]

    def __repr__(self) -> str:
        return f"JNI {self.fifo!r} {self.target}"
