"""RTL instructions.

An RTL instruction describes the complete effect of one machine
instruction as an assignment (or control transfer) over storage cells.
Any particular RTL is machine specific, but the *form* is machine
independent, which is what lets the optimizer transform machine code in a
machine-independent way.

Instructions are mutable objects: optimization passes rewrite operand
expressions in place via :meth:`Instr.map_exprs` and the CFG tracks them
by identity.  Every instruction carries a ``comment`` (mirroring the
listings in the paper) and an optional ``lno`` tag used by the recurrence
partition vectors ``(lno, acc, iv, cee, dee, roffset)``.

Dataflow caching
----------------

``uses()``/``defs()`` are queried constantly by liveness, DCE, LICM,
register allocation and the WM lowering, and each call used to rebuild a
set by walking operand expression trees.  They are now computed once per
instruction and cached — both as frozensets and as int *bitmasks* over
the process-wide cell interning table (:func:`repro.rtl.expr.cell_index`)
— and invalidated through the mutation funnel: every operand field that
feeds ``uses``/``defs`` (``Assign.dst``/``src``, ``Compare.left``/
``right``, ``Ret.live_out``, stream ``base``/``count``, …) is a property
whose setter drops the cache, so :meth:`map_exprs` and the handful of
in-place operand writers in the passes invalidate automatically.  Code
that bypasses the setters (e.g. restoring ``__slots__`` state wholesale)
must call :meth:`Instr.invalidate_dataflow` itself.

The cached sets are frozen; callers must not mutate them.  List/set
valued operands (``Call.arg_regs``/``ret_regs``/``clobbers``) must be
replaced, never mutated in place.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Union

from .expr import (
    BinOp,
    Expr,
    Imm,
    Mem,
    Reg,
    Sym,
    UnOp,
    VReg,
    cell_index,
    contains_mem,
    regs_in,
)

__all__ = [
    "CCCell",
    "Cell",
    "Instr",
    "Assign",
    "Compare",
    "Jump",
    "CondJump",
    "Call",
    "Ret",
    "Label",
    "StreamIn",
    "StreamOut",
    "StreamStop",
    "JumpStreamNotDone",
    "is_load",
    "is_store",
]


@dataclass(frozen=True, slots=True)
class CCCell:
    """The condition-code FIFO of one execution unit ('r' or 'f').

    Modeled as a single dataflow cell: a :class:`Compare` defines it and
    the next :class:`CondJump` on the same unit uses it.  The compiler
    guarantees exactly one compare per conditional jump (a WM requirement).
    """

    bank: str

    def __repr__(self) -> str:
        return f"cc[{self.bank}]"


Cell = Union[Reg, VReg, CCCell]

_EMPTY_FROZEN: frozenset = frozenset()

#: per-class flattened slot list used by :meth:`Instr.clone`
_CLONE_SLOTS: dict = {}


class Instr:
    """Base class for RTL instructions."""

    __slots__ = ("comment", "lno", "origin", "_df")

    def __init__(self, comment: str = "", lno: int = 0) -> None:
        self.comment = comment
        self.lno = lno
        #: Provenance tag: the pass that created (or last structurally
        #: rewrote) this instruction, e.g. ``"streaming"``,
        #: ``"recurrence:rotate"``, ``"regalloc:spill"``.  None for
        #: instructions straight out of the expander.  Carried through
        #: in-place rewrites automatically (map_exprs mutates operands,
        #: not the instruction object) and surfaced per-line by
        #: ``repro explain --asm``.
        self.origin: Optional[str] = None
        self._df = None

    # -- dataflow interface -------------------------------------------------
    def _dataflow(self) -> tuple:
        """(uses, defs, uses_mask, defs_mask, mem), computed once and
        cached.  ``mem`` is True when any operand tree contains a memory
        cell (including a store destination)."""
        df = self._df
        if df is None:
            u = frozenset(self._compute_uses())
            d = frozenset(self._compute_defs())
            um = 0
            for c in u:
                um |= 1 << cell_index(c)
            dm = 0
            for c in d:
                dm |= 1 << cell_index(c)
            mem = self.writes_mem() is not None
            if not mem:
                for e in self.use_exprs():
                    if contains_mem(e):
                        mem = True
                        break
            df = self._df = (u, d, um, dm, mem)
        return df

    def defs(self) -> frozenset:
        """Register/CC cells written by this instruction (frozen)."""
        df = self._df
        return df[1] if df is not None else self._dataflow()[1]

    def uses(self) -> frozenset:
        """Register/CC cells read by this instruction (frozen)."""
        df = self._df
        return df[0] if df is not None else self._dataflow()[0]

    def uses_mask(self) -> int:
        """``uses()`` as an interned-cell bitmask."""
        df = self._df
        return df[2] if df is not None else self._dataflow()[2]

    def defs_mask(self) -> int:
        """``defs()`` as an interned-cell bitmask."""
        df = self._df
        return df[3] if df is not None else self._dataflow()[3]

    def has_mem_operand(self) -> bool:
        """True when any operand tree touches a memory cell."""
        df = self._df
        return df[4] if df is not None else self._dataflow()[4]

    def invalidate_dataflow(self) -> None:
        """Drop the cached use/def sets after an operand mutation.

        Operand property setters call this automatically; only code
        writing private slots directly needs to call it by hand.
        """
        self._df = None

    def clone(self) -> "Instr":
        """A structurally independent copy of this instruction.

        Operand *expressions* are shared (passes replace them, never
        mutate them in place), mutable containers (``Call.arg_regs``,
        ``Ret.live_out``, …) are copied, and the dataflow cache is
        carried over (it only refers to shared immutable values).  Used
        by the pipeline's pass sandbox to snapshot the pre-pass IR —
        once per degradable pass, so the per-class slot list is cached
        to keep the walk off the MRO.
        """
        cls = type(self)
        slots = _CLONE_SLOTS.get(cls)
        if slots is None:
            slots = tuple(slot for klass in cls.__mro__
                          for slot in getattr(klass, "__slots__", ()))
            _CLONE_SLOTS[cls] = slots
        new = object.__new__(cls)
        for slot in slots:
            value = getattr(self, slot)
            if isinstance(value, (list, set)):
                value = type(value)(value)
            setattr(new, slot, value)
        return new

    # -- pickling ----------------------------------------------------------
    #
    # The cached ``_df`` tuple embeds int bitmasks over the *producing
    # process's* cell-interning table (repro.rtl.expr.cell_index), whose
    # index assignment depends on first-sight order.  A pickled
    # instruction may be loaded by a different process (the persistent
    # compile-artifact store), where those indices would silently decode
    # to the wrong cells — so pickles carry no dataflow cache and the
    # loader recomputes it lazily against its own interning table.

    def __getstate__(self) -> dict:
        cls = type(self)
        slots = _CLONE_SLOTS.get(cls)
        if slots is None:
            slots = tuple(slot for klass in cls.__mro__
                          for slot in getattr(klass, "__slots__", ()))
            _CLONE_SLOTS[cls] = slots
        return {slot: getattr(self, slot)
                for slot in slots if slot != "_df"}

    def __setstate__(self, state: dict) -> None:
        self._df = None
        for slot, value in state.items():
            setattr(self, slot, value)

    def _compute_uses(self):
        return _EMPTY_FROZEN

    def _compute_defs(self):
        return _EMPTY_FROZEN

    def use_exprs(self) -> list[Expr]:
        """The operand expressions evaluated by this instruction."""
        return []

    def map_exprs(self, fn: Callable[[Expr], Expr]) -> None:
        """Rewrite every operand expression in place with ``fn``.

        ``fn`` receives each *source* expression (including the address
        expression of a store destination) and returns its replacement.
        """

    def reads_mem(self) -> Optional[Mem]:
        """The memory cell read by this instruction, if any."""
        return None

    def writes_mem(self) -> Optional[Mem]:
        """The memory cell written by this instruction, if any."""
        return None

    def is_branch(self) -> bool:
        """True for instructions that may transfer control."""
        return False

    def branch_targets(self) -> list[str]:
        """Labels this instruction may jump to."""
        return []

    def falls_through(self) -> bool:
        """True if control may continue to the next instruction."""
        return True


class Assign(Instr):
    """``dst := src`` — the workhorse RTL.

    Covers ALU operations, register moves, address formation (``src`` a
    :class:`Sym`), loads (``src`` is exactly a :class:`Mem`) and stores
    (``dst`` is a :class:`Mem`).  The expander guarantees memory reads
    appear only as the *entire* right-hand side, so each Assign performs
    at most one memory access.
    """

    __slots__ = ("_dst", "_src")

    def __init__(self, dst: Expr, src: Expr, comment: str = "", lno: int = 0) -> None:
        super().__init__(comment, lno)
        self._dst = dst
        self._src = src

    @property
    def dst(self) -> Expr:
        return self._dst

    @dst.setter
    def dst(self, value: Expr) -> None:
        if value is not self._dst:
            self._dst = value
            self._df = None

    @property
    def src(self) -> Expr:
        return self._src

    @src.setter
    def src(self, value: Expr) -> None:
        if value is not self._src:
            self._src = value
            self._df = None

    def _compute_defs(self):
        if isinstance(self._dst, (Reg, VReg)):
            return (self._dst,)
        return _EMPTY_FROZEN

    def _compute_uses(self):
        used = regs_in(self._src)
        if isinstance(self._dst, Mem):
            used |= regs_in(self._dst.addr)
        return used

    def use_exprs(self) -> list[Expr]:
        exprs = [self._src]
        if isinstance(self._dst, Mem):
            exprs.append(self._dst.addr)
        return exprs

    def map_exprs(self, fn: Callable[[Expr], Expr]) -> None:
        self.src = fn(self._src)
        if isinstance(self._dst, Mem):
            new_addr = fn(self._dst.addr)
            if new_addr is not self._dst.addr:
                self.dst = Mem(new_addr, self._dst.width, self._dst.fp,
                               self._dst.signed)

    def reads_mem(self) -> Optional[Mem]:
        if isinstance(self._src, Mem):
            return self._src
        return None

    def writes_mem(self) -> Optional[Mem]:
        if isinstance(self._dst, Mem):
            return self._dst
        return None

    def __repr__(self) -> str:
        return f"{self._dst!r} := {self._src!r}"


def is_load(instr: Instr) -> bool:
    """True if ``instr`` is a register load from memory."""
    return isinstance(instr, Assign) and isinstance(instr.src, Mem)


def is_store(instr: Instr) -> bool:
    """True if ``instr`` stores to memory."""
    return isinstance(instr, Assign) and isinstance(instr.dst, Mem)


class Compare(Instr):
    """Evaluate a comparison and enqueue the result in a unit's CC FIFO.

    Written ``r[31] := (a op b)`` in WM listings: the compare is executed
    by the ``bank`` unit and its boolean result is buffered for the IFU.
    """

    __slots__ = ("bank", "op", "_left", "_right")

    def __init__(self, bank: str, op: str, left: Expr, right: Expr,
                 comment: str = "", lno: int = 0) -> None:
        super().__init__(comment, lno)
        self.bank = bank
        self.op = op
        self._left = left
        self._right = right

    @property
    def left(self) -> Expr:
        return self._left

    @left.setter
    def left(self, value: Expr) -> None:
        if value is not self._left:
            self._left = value
            self._df = None

    @property
    def right(self) -> Expr:
        return self._right

    @right.setter
    def right(self, value: Expr) -> None:
        if value is not self._right:
            self._right = value
            self._df = None

    def _compute_defs(self):
        return (CCCell(self.bank),)

    def _compute_uses(self):
        return regs_in(self._left) | regs_in(self._right)

    def use_exprs(self) -> list[Expr]:
        return [self._left, self._right]

    def map_exprs(self, fn: Callable[[Expr], Expr]) -> None:
        self.left = fn(self._left)
        self.right = fn(self._right)

    def reads_mem(self) -> Optional[Mem]:
        for e in (self._left, self._right):
            if isinstance(e, Mem):
                return e
        return None

    def __repr__(self) -> str:
        return f"{self.bank}cc := ({self._left!r} {self.op} {self._right!r})"


class Jump(Instr):
    """Unconditional branch, executed by the IFU at zero cost."""

    __slots__ = ("target",)

    def __init__(self, target: str, comment: str = "", lno: int = 0) -> None:
        super().__init__(comment, lno)
        self.target = target

    def is_branch(self) -> bool:
        return True

    def branch_targets(self) -> list[str]:
        return [self.target]

    def falls_through(self) -> bool:
        return False

    def __repr__(self) -> str:
        return f"jump {self.target}"


class CondJump(Instr):
    """Conditional branch: dequeue a CC from ``bank`` and jump on ``sense``.

    ``JumpIT`` (sense=True) in the paper's listings jumps when the queued
    compare produced true; ``JumpIF`` (sense=False) when it produced false.
    """

    __slots__ = ("bank", "sense", "target")

    def __init__(self, bank: str, sense: bool, target: str,
                 comment: str = "", lno: int = 0) -> None:
        super().__init__(comment, lno)
        self.bank = bank
        self.sense = sense
        self.target = target

    def _compute_uses(self):
        return (CCCell(self.bank),)

    def is_branch(self) -> bool:
        return True

    def branch_targets(self) -> list[str]:
        return [self.target]

    def __repr__(self) -> str:
        mnem = "JumpIT" if self.sense else "JumpIF"
        return f"{mnem} {self.target} ({self.bank})"


class Call(Instr):
    """Call a function by symbol.

    ``arg_regs`` are the ABI registers carrying arguments (uses);
    ``ret_regs`` the registers defined by the call; ``clobbers`` the
    caller-saved set additionally killed.  These containers must be
    *replaced*, never mutated in place (the use/def cache would go
    stale).
    """

    __slots__ = ("func", "arg_regs", "ret_regs", "clobbers")

    def __init__(self, func: str, arg_regs: list[Expr], ret_regs: list[Expr],
                 clobbers: Optional[set[Expr]] = None,
                 comment: str = "", lno: int = 0) -> None:
        super().__init__(comment, lno)
        self.func = func
        self.arg_regs = list(arg_regs)
        self.ret_regs = list(ret_regs)
        self.clobbers = set(clobbers or ())

    def _compute_defs(self):
        return set(self.ret_regs) | set(self.clobbers)

    def _compute_uses(self):
        return set(self.arg_regs)

    def reads_mem(self) -> Optional[Mem]:
        # Conservatively, a call may read any memory; the passes treat
        # Call specially rather than through this accessor.
        return None

    def __repr__(self) -> str:
        return f"call {self.func}"


class Ret(Instr):
    """Return from the current function. ``live_out`` lists ABI registers
    (return value, callee-saved) that must be treated as used."""

    __slots__ = ("_live_out",)

    def __init__(self, live_out: Optional[set[Expr]] = None,
                 comment: str = "", lno: int = 0) -> None:
        super().__init__(comment, lno)
        self._live_out = set(live_out or ())

    @property
    def live_out(self) -> set:
        return self._live_out

    @live_out.setter
    def live_out(self, value) -> None:
        self._live_out = set(value)
        self._df = None

    def _compute_uses(self):
        return set(self._live_out)

    def is_branch(self) -> bool:
        return True

    def falls_through(self) -> bool:
        return False

    def __repr__(self) -> str:
        return "ret"


class Label(Instr):
    """A branch target in flat instruction lists (pseudo-instruction)."""

    __slots__ = ("name",)

    def __init__(self, name: str, comment: str = "", lno: int = 0) -> None:
        super().__init__(comment, lno)
        self.name = name

    def __repr__(self) -> str:
        return f"{self.name}:"


class _StreamBase(Instr):
    """Common operands of the stream instructions.

    A stream instruction specifies the FIFO to read/write, the base
    address, the count of memory accesses, and the stride between
    successive elements (all taken from registers except the stride,
    which is an immediate in the instruction word).
    """

    __slots__ = ("fifo", "_base", "_count", "stride", "width", "fp")

    def __init__(self, fifo: Reg, base: Expr, count: Expr, stride: int,
                 width: int, fp: bool, comment: str = "", lno: int = 0) -> None:
        super().__init__(comment, lno)
        self.fifo = fifo
        self._base = base
        self._count = count
        self.stride = stride
        self.width = width
        self.fp = fp

    @property
    def base(self) -> Expr:
        return self._base

    @base.setter
    def base(self, value: Expr) -> None:
        if value is not self._base:
            self._base = value
            self._df = None

    @property
    def count(self):
        return self._count

    @count.setter
    def count(self, value) -> None:
        if value is not self._count:
            self._count = value
            self._df = None

    def _compute_uses(self):
        used = regs_in(self._base)
        if self._count is not None:
            used |= regs_in(self._count)
        return used

    def use_exprs(self) -> list[Expr]:
        if self._count is None:
            return [self._base]
        return [self._base, self._count]

    def map_exprs(self, fn: Callable[[Expr], Expr]) -> None:
        self.base = fn(self._base)
        if self._count is not None:
            self.count = fn(self._count)


class StreamIn(_StreamBase):
    """``SinD fifo,base,count,stride`` — stream memory into an input FIFO."""

    def __repr__(self) -> str:
        return (f"SIN {self.fifo!r},{self._base!r},{self._count!r},"
                f"{self.stride}")


class StreamOut(_StreamBase):
    """``SoutD fifo,base,count,stride`` — stream an output FIFO to memory."""

    def __repr__(self) -> str:
        return (f"SOUT {self.fifo!r},{self._base!r},{self._count!r},"
                f"{self.stride}")


class StreamStop(Instr):
    """Terminate an infinite stream bound to ``fifo`` (loop-exit cleanup).

    ``kind`` selects the input or output stream on that FIFO index.
    """

    __slots__ = ("fifo", "kind")

    def __init__(self, fifo: Reg, kind: str = "in", comment: str = "",
                 lno: int = 0) -> None:
        super().__init__(comment, lno)
        self.fifo = fifo
        self.kind = kind

    def __repr__(self) -> str:
        return f"SSTOP {self.fifo!r} ({self.kind})"


class JumpStreamNotDone(Instr):
    """``JNIfN label`` — jump while the stream on ``fifo`` is not exhausted.

    Executed by the IFU against the stream-status state maintained by the
    SCU, so like other IFU branches it costs no execution-unit cycles.
    ``kind`` selects the input or output stream on the FIFO index.
    """

    __slots__ = ("fifo", "target", "kind")

    def __init__(self, fifo: Reg, target: str, kind: str = "in",
                 comment: str = "", lno: int = 0) -> None:
        super().__init__(comment, lno)
        self.fifo = fifo
        self.target = target
        self.kind = kind

    def is_branch(self) -> bool:
        return True

    def branch_targets(self) -> list[str]:
        return [self.target]

    def __repr__(self) -> str:
        return f"JNI {self.fifo!r} {self.target}"
