"""Expression trees over hardware storage cells.

RTLs (register transfer lists) describe the effect of machine instructions
as assignments over the hardware's storage cells (Benitez & Davidson 1991).
This module defines the expression language those assignments are written
in: registers, immediates, symbolic addresses, memory reads, and operator
nodes.

All expression nodes are immutable (frozen dataclasses) so they can be
hashed, shared between instructions, and used as dictionary keys by the
dataflow analyses.  Rewriting is done by building new trees (see
:func:`subst` and :func:`fold`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, Mapping, Union

__all__ = [
    "Expr",
    "Reg",
    "VReg",
    "Imm",
    "Sym",
    "Mem",
    "BinOp",
    "UnOp",
    "regs_in",
    "mems_in",
    "subst",
    "subst_reg",
    "fold",
    "walk",
    "contains_mem",
    "BINOPS",
    "COMPARE_OPS",
    "cell_index",
    "cell_of_index",
    "cells_of_mask",
    "mask_of_cells",
    "bank_reg_mask",
    "bank_vreg_mask",
    "fifo_reg_mask",
]


class Expr:
    """Base class for all RTL expression nodes."""

    __slots__ = ()

    def is_constant(self) -> bool:
        """True if this expression is a literal constant."""
        return isinstance(self, Imm)


@dataclass(frozen=True, slots=True)
class Reg(Expr):
    """A hard machine register, e.g. ``r[22]`` or ``f[4]``.

    ``bank`` names the register file ('r' for the integer unit, 'f' for
    the floating-point unit on WM; back ends may define other banks).
    """

    bank: str
    index: int

    def __repr__(self) -> str:
        return f"{self.bank}[{self.index}]"


@dataclass(frozen=True, slots=True)
class VReg(Expr):
    """A virtual register produced by the code expander.

    Virtual registers are replaced by hard :class:`Reg` cells during
    register allocation.  ``bank`` carries the register class the value
    must live in ('r' or 'f').
    """

    bank: str
    index: int

    def __repr__(self) -> str:
        return f"v{self.bank}[{self.index}]"


@dataclass(frozen=True, slots=True)
class Imm(Expr):
    """An immediate (literal) operand."""

    value: Union[int, float]

    def __repr__(self) -> str:
        return repr(self.value)


@dataclass(frozen=True, slots=True)
class Sym(Expr):
    """A link-time symbolic address, e.g. ``_x`` or ``_x+8``.

    ``name`` is the assembly-level symbol; ``offset`` is a byte
    displacement folded into the symbol by constant folding.
    """

    name: str
    offset: int = 0

    def __repr__(self) -> str:
        if self.offset:
            sign = "+" if self.offset >= 0 else "-"
            return f"_{self.name}{sign}{abs(self.offset)}"
        return f"_{self.name}"


@dataclass(frozen=True, slots=True)
class Mem(Expr):
    """A memory cell: ``M[addr]`` with an access width in bytes.

    ``fp`` distinguishes floating-point data (routed to the FEU FIFOs on
    WM) from integer data.  ``signed`` controls sign extension of
    sub-word loads.
    """

    addr: Expr
    width: int = 4
    fp: bool = False
    signed: bool = True

    def __repr__(self) -> str:
        tag = "F" if self.fp else ("I" if self.signed else "U")
        return f"{tag}{self.width * 8}[{self.addr!r}]"


@dataclass(frozen=True, slots=True)
class BinOp(Expr):
    """A binary operator node, e.g. ``(r[22] << 3) + r[24]``."""

    op: str
    left: Expr
    right: Expr

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op} {self.right!r})"


@dataclass(frozen=True, slots=True)
class UnOp(Expr):
    """A unary operator node (negation, bitwise not, conversions)."""

    op: str
    operand: Expr

    def __repr__(self) -> str:
        return f"{self.op}({self.operand!r})"


#: Binary operators understood by the folder and evaluators.
BINOPS = {
    "+", "-", "*", "/", "%", "<<", ">>", "&", "|", "^",
    "==", "!=", "<", "<=", ">", ">=",
}

#: The subset of operators that produce a condition-code value.
COMPARE_OPS = {"==", "!=", "<", "<=", ">", ">="}


# ---------------------------------------------------------------------------
# cell interning
# ---------------------------------------------------------------------------
#
# Every dataflow cell (Reg, VReg, or the CCCell defined in rtl.instr) gets a
# process-wide small-integer index on first sight.  A *set of cells* is then
# representable as a Python int bitmask, which turns the liveness transfer
# functions into single OR/AND-NOT machine-word operations and makes set
# membership a one-bit test.  The table only ever grows (a compiler run
# touches a few hundred distinct cells at most), so indices are stable for
# the lifetime of the process and masks from different functions compose.

_CELL_INDEX: dict = {}
_CELL_BY_INDEX: list = []
_BANK_REG_MASKS: dict[str, int] = {}
_BANK_VREG_MASKS: dict[str, int] = {}
_FIFO_MASK = 0

#: FIFO register indices on WM (r0/r1/f0/f1) — mirrored from opt.combine,
#: kept here so interning can maintain the fifo mask without an import cycle.
_FIFO_INDICES = (0, 1)


def cell_index(cell) -> int:
    """The process-wide small-int index of a dataflow cell (interning)."""
    idx = _CELL_INDEX.get(cell)
    if idx is None:
        global _FIFO_MASK
        idx = len(_CELL_BY_INDEX)
        _CELL_INDEX[cell] = idx
        _CELL_BY_INDEX.append(cell)
        if isinstance(cell, (Reg, VReg)):
            _BANK_REG_MASKS[cell.bank] = \
                _BANK_REG_MASKS.get(cell.bank, 0) | (1 << idx)
            if isinstance(cell, VReg):
                _BANK_VREG_MASKS[cell.bank] = \
                    _BANK_VREG_MASKS.get(cell.bank, 0) | (1 << idx)
            elif cell.index in _FIFO_INDICES:
                _FIFO_MASK |= 1 << idx
    return idx


def cell_of_index(idx: int):
    """The cell a :func:`cell_index` value stands for."""
    return _CELL_BY_INDEX[idx]


def mask_of_cells(cells) -> int:
    """Encode an iterable of cells as an int bitmask."""
    mask = 0
    for cell in cells:
        mask |= 1 << cell_index(cell)
    return mask


_DECODE_CACHE: dict[int, frozenset] = {}


def cells_of_mask(mask: int) -> frozenset:
    """Decode a bitmask back to the frozenset of cells it encodes.

    Distinct mask values repeat heavily across instructions (liveness
    changes slowly along a block), so decoded sets are memoized.  The
    memo is only correct because the interning table never reassigns
    indices.
    """
    cached = _DECODE_CACHE.get(mask)
    if cached is None:
        table = _CELL_BY_INDEX
        cached = _DECODE_CACHE[mask] = frozenset(
            table[i] for i in _iter_bits(mask))
        if len(_DECODE_CACHE) > 1 << 16:   # unbounded growth guard
            _DECODE_CACHE.clear()
            _DECODE_CACHE[mask] = cached
    return cached


def _iter_bits(mask: int):
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


def bank_reg_mask(bank: str) -> int:
    """Mask of every interned Reg/VReg of ``bank`` (CC cells excluded)."""
    return _BANK_REG_MASKS.get(bank, 0)


def bank_vreg_mask(bank: str) -> int:
    """Mask of every interned virtual register of ``bank``."""
    return _BANK_VREG_MASKS.get(bank, 0)


def fifo_reg_mask() -> int:
    """Mask of every interned WM FIFO register (r0/r1/f0/f1)."""
    return _FIFO_MASK


def walk(expr: Expr) -> Iterator[Expr]:
    """Yield ``expr`` and every sub-expression, pre-order."""
    yield expr
    if isinstance(expr, BinOp):
        yield from walk(expr.left)
        yield from walk(expr.right)
    elif isinstance(expr, UnOp):
        yield from walk(expr.operand)
    elif isinstance(expr, Mem):
        yield from walk(expr.addr)


def regs_in(expr: Expr) -> set[Expr]:
    """The set of register cells (hard or virtual) read by ``expr``."""
    return {e for e in walk(expr) if isinstance(e, (Reg, VReg))}


def mems_in(expr: Expr) -> list[Mem]:
    """All memory-read cells inside ``expr`` (normally zero or one)."""
    return [e for e in walk(expr) if isinstance(e, Mem)]


def contains_mem(expr: Expr) -> bool:
    """True if evaluating ``expr`` reads memory."""
    return any(isinstance(e, Mem) for e in walk(expr))


def subst(expr: Expr, mapping: Mapping[Expr, Expr]) -> Expr:
    """Return ``expr`` with every occurrence of a key cell replaced.

    Keys are matched by structural equality against whole sub-expressions,
    so this substitutes registers as well as larger trees.
    """
    if expr in mapping:
        return mapping[expr]
    if isinstance(expr, BinOp):
        left = subst(expr.left, mapping)
        right = subst(expr.right, mapping)
        if left is expr.left and right is expr.right:
            return expr
        return BinOp(expr.op, left, right)
    if isinstance(expr, UnOp):
        operand = subst(expr.operand, mapping)
        if operand is expr.operand:
            return expr
        return UnOp(expr.op, operand)
    if isinstance(expr, Mem):
        addr = subst(expr.addr, mapping)
        if addr is expr.addr:
            return expr
        return Mem(addr, expr.width, expr.fp, expr.signed)
    return expr


def subst_reg(expr: Expr, reg: Expr, replacement: Expr) -> Expr:
    """Replace one register cell throughout ``expr``."""
    return subst(expr, {reg: replacement})


def _as_int(value: Union[int, float]) -> int:
    return int(value)


_INT_FOLDERS: dict[str, Callable[[int, int], int]] = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "<<": lambda a, b: a << b,
    ">>": lambda a, b: a >> b,
    "&": lambda a, b: a & b,
    "|": lambda a, b: a | b,
    "^": lambda a, b: a ^ b,
}


def fold(expr: Expr) -> Expr:
    """Constant-fold ``expr``, canonicalizing symbol arithmetic.

    Folding is deliberately conservative: it only rewrites when the result
    is exactly representable in the expression language (e.g. ``Sym + Imm``
    becomes a ``Sym`` with a byte offset, used heavily by the recurrence
    partition analysis to compute 'dee' values).
    """
    if isinstance(expr, BinOp):
        left = fold(expr.left)
        right = fold(expr.right)
        op = expr.op
        if isinstance(left, Imm) and isinstance(right, Imm):
            if op in _INT_FOLDERS and isinstance(left.value, int) and isinstance(right.value, int):
                return Imm(_INT_FOLDERS[op](left.value, right.value))
            if op == "+":
                return Imm(left.value + right.value)
            if op == "-":
                return Imm(left.value - right.value)
            if op == "*":
                return Imm(left.value * right.value)
        # Symbol +/- constant folds into the symbol's offset.
        if isinstance(left, Sym) and isinstance(right, Imm) and isinstance(right.value, int):
            if op == "+":
                return Sym(left.name, left.offset + right.value)
            if op == "-":
                return Sym(left.name, left.offset - right.value)
        if isinstance(left, Imm) and isinstance(right, Sym) and isinstance(left.value, int) and op == "+":
            return Sym(right.name, right.offset + left.value)
        # Additive/multiplicative identities.
        if op == "+":
            if isinstance(left, Imm) and left.value == 0:
                return right
            if isinstance(right, Imm) and right.value == 0:
                return left
        if op == "-" and isinstance(right, Imm) and right.value == 0:
            return left
        if op == "*":
            if isinstance(left, Imm) and left.value == 1:
                return right
            if isinstance(right, Imm) and right.value == 1:
                return left
        if op == "<<" and isinstance(right, Imm) and right.value == 0:
            return left
        if left is expr.left and right is expr.right:
            return expr
        return BinOp(op, left, right)
    if isinstance(expr, UnOp):
        operand = fold(expr.operand)
        if expr.op == "neg" and isinstance(operand, Imm):
            return Imm(-operand.value)
        if operand is expr.operand:
            return expr
        return UnOp(expr.op, operand)
    if isinstance(expr, Mem):
        addr = fold(expr.addr)
        if addr is expr.addr:
            return expr
        return Mem(addr, expr.width, expr.fp, expr.signed)
    return expr
