"""Streaming code generation (the paper's second algorithm)."""

from .transform import MIN_ITERATIONS, StreamReport, optimize_streams

__all__ = ["MIN_ITERATIONS", "StreamReport", "optimize_streams"]
