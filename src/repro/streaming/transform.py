"""Streaming optimization (the paper's second algorithm).

After recurrences have been optimized, the compiler converts remaining
per-iteration memory references whose address is an affine function of a
loop induction variable into hardware stream instructions:

1. determine the iteration count (``loop_count``); fewer than four
   iterations is never worth a stream's set-up cost;
2. for each safe partition with no remaining memory recurrence, each
   reference that executes on every iteration, has a compile-time
   stride, and can be allocated a FIFO register is turned into a
   ``SinD``/``SoutD`` issued in the pre-header;
3. the loop-exit compare/branch is replaced by a stream-status jump
   (``JNIf``) and the now-dead induction-variable update is deleted.

Loops whose trip count cannot be computed are streamed with *infinite*
streams and ``Sstop`` instructions at the loop exits, when the exit
structure allows it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..machine.base import Machine
from ..obs import Remark, get_remark_sink, get_tracer
from ..opt.cfg import CFG, Block
from ..opt.combine import is_fifo_reg
from ..opt.dataflow import compute_liveness
from ..opt.dominators import Dominators, compute_dominators
from ..opt.emitexpr import VRegAllocator, emit_expr
from ..opt.induction import BasicIV, count_defs
from ..opt.loops import Loop, ensure_preheader, find_loops
from ..recurrence.partitions import (
    LoopMemoryInfo, MemRef, Partition, partition_loop,
)
from ..rtl.expr import BinOp, Expr, Imm, Mem, Reg, Sym, VReg, fold, subst
from ..rtl.instr import (
    Assign, Compare, CondJump, Instr, JumpStreamNotDone, StreamIn, StreamOut,
    StreamStop,
)

__all__ = ["StreamReport", "optimize_streams", "MIN_ITERATIONS"]

#: Paper Step 1: "If the number of iterations is determined to be three
#: or fewer, do not use streams."
MIN_ITERATIONS = 4


@dataclass
class StreamReport:
    """What the streaming pass did to one loop."""

    loop_header: str
    streams_in: int = 0
    streams_out: int = 0
    infinite: bool = False
    loop_test_replaced: bool = False
    iv_increment_deleted: bool = False
    refs: list[tuple] = field(default_factory=list)


@dataclass
class _LoopTest:
    """The loop's bottom continuation test: Compare + CondJump."""

    compare: Compare
    jump: CondJump
    block: Block
    iv: Expr
    bound: Expr          # loop-invariant bound operand
    op: str              # normalized: continue while (iv op bound)
    step: int


def optimize_streams(cfg: CFG, machine: Machine,
                     allow_infinite: bool = True,
                     am=None) -> list[StreamReport]:
    """Run the streaming algorithm over every innermost loop.

    The top-level dominator/loop-forest queries go through the analysis
    manager when one is provided; a transformed loop (the only case that
    mutates the graph) invalidates it.
    """
    if not machine.has_streams:
        return []
    reports: list[StreamReport] = []
    doms = am.dominators() if am is not None else compute_dominators(cfg)
    loops = am.loops() if am is not None else find_loops(cfg, doms)
    innermost = [
        loop for loop in loops
        if not any(other is not loop and other.blocks < loop.blocks
                   for other in loops)
    ]
    for loop in innermost:
        report = _stream_loop(cfg, machine, loop, doms, allow_infinite)
        if report is not None:
            reports.append(report)
            if am is not None:
                am.invalidate()
        doms = am.dominators() if am is not None else \
            compute_dominators(cfg)
    return reports


def _stream_loop(cfg: CFG, machine: Machine, loop: Loop, doms: Dominators,
                 allow_infinite: bool) -> Optional[StreamReport]:
    info = partition_loop(cfg, loop, doms)
    all_refs = [ref for part in info.partitions for ref in part.refs]
    sink = get_remark_sink()

    def _remark(kind: str, reason: str, ref: Optional[MemRef] = None,
                detail: str = "", **args) -> None:
        if sink.enabled:
            sink.emit(Remark(
                "streaming", kind, reason,
                function=cfg.func.name, loop=loop.header.label,
                lno=ref.instr.lno if ref is not None else 0,
                block=ref.block.label if ref is not None else "",
                detail=detail, args=args))

    def _reject_loop(reason: str, detail: str = "") -> None:
        # The whole loop is out: give every reference a final
        # disposition so `repro explain` covers 100% of them.
        for ref in all_refs:
            _remark("missed", reason, ref, detail=detail)

    test_why: list[str] = []
    test = _find_loop_test(cfg, loop, info, why=test_why)
    count_expr = _loop_count_expr(test) if test is not None else None
    if count_expr is None and sink.enabled and all_refs:
        _remark("analysis", "unknown-loop-count",
                detail=test_why[0] if test_why else
                "loop test gives no closed-form iteration count")
    # A finite (count-based) stream requires the bottom test to be the
    # loop's ONLY exit: an early break would leave the streams partially
    # consumed and the JNI counter out of sync.
    if count_expr is not None and len(loop.exit_edges()) != 1:
        count_expr = None
        _remark("analysis", "multi-exit",
                detail=f"{len(loop.exit_edges())} exit edges: counted "
                       f"stream forfeited, falling back to infinite")
    infinite = count_expr is None
    if infinite and not allow_infinite:
        _reject_loop("infinite-disallowed")
        return None
    if infinite and not _infinite_streams_ok(cfg, loop):
        _reject_loop("no-exit-edges")
        return None
    if not infinite:
        known = _constant_count(cfg, loop, test, count_expr)
        if known is not None and known < MIN_ITERATIONS:
            _reject_loop("short-trip-count",
                         detail=f"{known} iterations")
            return None  # Step 1: 3 or fewer iterations

    # Step 2: choose the references to stream.
    candidates: list[MemRef] = []
    normals: list[MemRef] = []
    for part in info.partitions:
        part_ok = part.safe and not part.has_recurrence()
        for ref in part.refs:
            if ref in candidates or ref in normals:
                continue
            ref_reason = None
            if not part.safe:
                ref_reason = part.unsafe_code or "region-unknown"
                if ref_reason == "region-unknown" and ref.analysis_note:
                    # The per-reference affine failure (non-constant
                    # scale, two IVs, ...) is sharper than the
                    # partition-level "region unknown" it caused.
                    ref_reason = ref.analysis_note
            elif part.has_recurrence():
                ref_reason = "recurrence-present"
            else:
                ref_reason = _streamable_reason(ref, loop, doms, cfg)
            if ref_reason is None and infinite and ref.is_store:
                # Output streams need a definite element count: an
                # infinite out-stream could not drain deterministically
                # at a data-dependent exit, so stores in unbounded loops
                # stay ordinary FIFO stores.
                ref_reason = "infinite-store"
            if ref_reason is None:
                candidates.append(ref)
            else:
                _remark("missed", ref_reason, ref,
                        partition=part.key, vector=ref.vector())
                normals.append(ref)
    if not candidates:
        if all_refs:
            _remark("analysis", "no-stream-candidates")
        return None
    # Step e: FIFO allocation. Normal loads/stores always use FIFO 0 of
    # their bank/direction, so a stream may take FIFO 0 only when no
    # normal reference of that class remains in the loop.
    chosen = _allocate_fifos(machine, candidates, normals)
    chosen_refs = {id(ref) for ref, _fifo in chosen}
    for ref in candidates:
        if id(ref) not in chosen_refs:
            _remark("missed", "fifo-pressure", ref, vector=ref.vector())
    if not chosen:
        return None

    report = StreamReport(loop_header=loop.header.label, infinite=infinite)
    pre = ensure_preheader(cfg, loop)
    alloc = VRegAllocator(cfg.func)
    setup: list[Instr] = []
    count_leaf: Optional[Expr] = None
    if not infinite:
        count_leaf = emit_expr(count_expr, machine, alloc, setup, "r",
                               comment="number of items to stream")
    liveness = compute_liveness(cfg)

    first_in_fifo: Optional[Reg] = None
    for ref, fifo_index in chosen:
        bank = "f" if ref.mem.fp else "r"
        fifo = Reg(bank, fifo_index)
        base = _stream_base(ref, cfg, loop, doms)
        base_leaf = emit_expr(base, machine, alloc, setup, "r",
                              comment=f"stream base address")
        stream_cls = StreamOut if ref.is_store else StreamIn
        count_operand = count_leaf if count_leaf is not None else None
        setup.append(stream_cls(
            fifo, base_leaf,
            count_operand if count_operand is not None else Imm(0),
            ref.stride, ref.mem.width, ref.mem.fp,
            comment=("stream out" if ref.is_store else "stream in"),
        ))
        if infinite:
            setup[-1].count = None  # type: ignore[assignment]
        _rewrite_reference(cfg, loop, ref, fifo, liveness)
        if ref.is_store:
            report.streams_out += 1
        else:
            report.streams_in += 1
            if first_in_fifo is None:
                first_in_fifo = fifo
        report.refs.append(ref.vector() + (f"fifo{fifo_index}",))
        _remark("applied",
                "streamed-infinite" if infinite else "streamed", ref,
                detail=f"{'out' if ref.is_store else 'in'}-stream on "
                       f"{fifo!r}, stride {ref.stride}",
                fifo=f"fifo{fifo_index}", stride=ref.stride,
                direction="out" if ref.is_store else "in",
                vector=ref.vector())
    for instr in setup:
        instr.origin = "streaming:setup"
    insert_at = len(pre.instrs) - (1 if pre.terminator is not None else 0)
    pre.instrs[insert_at:insert_at] = setup

    # Step i: replace the loop test / add stream stops.
    jni_fifo = first_in_fifo
    jni_kind = "in"
    if jni_fifo is None:
        ref, fifo_index = chosen[0]
        jni_fifo = Reg("f" if ref.mem.fp else "r", fifo_index)
        jni_kind = "out" if ref.is_store else "in"
    if not infinite and test is not None:
        test.block.instrs.remove(test.compare)
        jpos = test.block.instrs.index(test.jump)
        jni = JumpStreamNotDone(
            jni_fifo, test.jump.target, kind=jni_kind,
            comment="jump if stream count not zero")
        jni.origin = "streaming:loop-test"
        test.block.instrs[jpos] = jni
        report.loop_test_replaced = True
        if sink.enabled:
            sink.emit(Remark(
                "streaming", "applied", "loop-test-replaced",
                function=cfg.func.name, loop=loop.header.label,
                block=test.block.label,
                detail=f"compare/branch replaced by JNI on {jni_fifo!r}"))
    elif infinite:
        for inside, outside in loop.exit_edges():
            stops = []
            for r, fi in chosen:
                stop = StreamStop(Reg("f" if r.mem.fp else "r", fi),
                                  kind="out" if r.is_store else "in",
                                  comment="stop stream at loop exit")
                stop.origin = "streaming:stop"
                stops.append(stop)
            _insert_on_exit_edge(cfg, inside, outside, stops)

    # Step j: delete the induction-variable update if the IV is dead.
    if test is not None and report.loop_test_replaced:
        if _try_delete_iv(cfg, loop, test.iv):
            report.iv_increment_deleted = True
            if sink.enabled:
                sink.emit(Remark(
                    "streaming", "applied", "iv-deleted",
                    function=cfg.func.name, loop=loop.header.label,
                    detail=f"dead update of {test.iv!r} deleted"))
        elif sink.enabled:
            sink.emit(Remark(
                "streaming", "missed", "iv-not-dead",
                function=cfg.func.name, loop=loop.header.label,
                detail=f"{test.iv!r} still used or live after the loop"))
    tracer = get_tracer()
    tracer.event(
        "rewrite.streaming", category="opt",
        loop=loop.header.label, streams_in=report.streams_in,
        streams_out=report.streams_out, infinite=infinite,
        loop_test_replaced=report.loop_test_replaced,
        detail=f"loop {loop.header.label}: {report.streams_in} in-stream(s),"
               f" {report.streams_out} out-stream(s)"
               f"{' (infinite)' if infinite else ''}")
    tracer.count("opt.streaming.streams",
                 report.streams_in + report.streams_out)
    return report


# ---------------------------------------------------------------------------
# loop-count analysis
# ---------------------------------------------------------------------------

def _find_loop_test(cfg: CFG, loop: Loop, info: LoopMemoryInfo,
                    why: Optional[list] = None) -> Optional[_LoopTest]:
    """Recognize the bottom-test Compare/CondJump pair driving the loop.

    ``why``, when given as an empty list, receives a one-line human
    explanation on failure (remark ``unknown-loop-count`` detail).
    """

    def _fail(detail: str) -> None:
        if why is not None and not why:
            why.append(detail)

    if len(loop.back_tails) != 1:
        _fail(f"{len(loop.back_tails)} back edges: no single bottom test")
        return None
    tail = loop.back_tails[0]
    term = tail.terminator
    if not isinstance(term, CondJump) or term.target != loop.header.label:
        _fail("back edge is not a conditional jump to the header")
        return None
    compare = None
    for instr in reversed(tail.body()):
        if isinstance(instr, Compare) and instr.bank == term.bank:
            compare = instr
            break
        if instr.defs():
            # Anything defining between compare and jump is fine, but a
            # second compare would desynchronize; keep scanning.
            continue
    if compare is None:
        _fail("no compare feeds the bottom-test jump")
        return None
    # Identify which operand is the IV.
    from ..opt.induction import find_basic_ivs
    ivs = find_basic_ivs(loop)
    left, right, op = compare.left, compare.right, compare.op
    sense = term.sense
    if not sense:
        op = _negate_op(op)
    if isinstance(left, (Reg, VReg)) and left in ivs:
        iv, bound = left, right
    elif isinstance(right, (Reg, VReg)) and right in ivs:
        iv, bound = right, left
        op = _flip_op(op)
    else:
        _fail("neither compare operand is a basic induction variable")
        return None
    # The bound must be loop-invariant.
    for block in loop.block_list:
        for instr in block.instrs:
            if isinstance(bound, (Reg, VReg)) and bound in instr.defs():
                _fail("loop bound is redefined inside the loop")
                return None
    step = ivs[iv].step
    return _LoopTest(compare=compare, jump=term, block=tail, iv=iv,
                     bound=bound, op=op, step=step)


def _negate_op(op: str) -> str:
    return {"==": "!=", "!=": "==", "<": ">=", "<=": ">",
            ">": "<=", ">=": "<"}[op]


def _flip_op(op: str) -> str:
    return {"==": "==", "!=": "!=", "<": ">", "<=": ">=",
            ">": "<", ">=": "<="}[op]


def _loop_count_expr(test: _LoopTest) -> Optional[Expr]:
    """Iteration count as an expression over pre-header values.

    The rotated loops place the test after the IV update, so with
    entering value ``iv0`` the loop body has executed ``m`` times when
    the test sees ``iv0 + m*step``; the count is the smallest ``m``
    failing the continue condition.  For ``<`` with positive step:
    ``ceil((bound - iv0)/step)``.
    """
    step = test.step
    iv, bound = test.iv, test.bound
    if step > 0 and test.op in ("<", "<="):
        # N = floor((bound - iv0 - adj)/step) + 1 with adj = 1 for '<'.
        adj = 1 if test.op == "<" else 0
        numerator = BinOp("-", bound, BinOp("+", iv, Imm(adj)))
        return fold(BinOp("+", BinOp("/", numerator, Imm(step)), Imm(1))) \
            if step != 1 else fold(BinOp("+", numerator, Imm(1)))
    if step < 0 and test.op in (">", ">="):
        adj = 1 if test.op == ">" else 0
        numerator = BinOp("-", iv, BinOp("+", bound, Imm(adj)))
        if -step != 1:
            return fold(BinOp("+", BinOp("/", numerator, Imm(-step)),
                              Imm(1)))
        return fold(BinOp("+", numerator, Imm(1)))
    if test.op == "!=" and step in (1, -1):
        diff = BinOp("-", bound, iv) if step == 1 else BinOp("-", iv, bound)
        return fold(diff)
    return None


def _constant_count(cfg: CFG, loop: Loop, test: Optional[_LoopTest],
                    count_expr: Optional[Expr]) -> Optional[int]:
    """Resolve the iteration count to a compile-time constant if the
    IV's entering value and the bound are both known."""
    if test is None or count_expr is None:
        return None
    from ..opt.dominators import compute_dominators
    from ..opt.induction import resolve_invariant
    from ..recurrence.partitions import _iv_initial
    doms = compute_dominators(cfg)
    substitutions = {}
    iv0 = _iv_initial(test.iv, loop, cfg, doms, count_defs(cfg))
    if isinstance(iv0, Imm):
        substitutions[test.iv] = iv0
    if isinstance(test.bound, (Reg, VReg)):
        bound = resolve_invariant(test.bound, loop.header, cfg)
        if isinstance(bound, Imm):
            substitutions[test.bound] = bound
    resolved = fold(subst(count_expr, substitutions))
    if isinstance(resolved, Imm) and isinstance(resolved.value, int):
        return resolved.value
    return None


def _infinite_streams_ok(cfg: CFG, loop: Loop) -> bool:
    """Infinite streams need loop exits the stops can be attached to
    (exit edges are split, so any normal exit structure qualifies)."""
    return bool(loop.exit_edges())


def _insert_on_exit_edge(cfg: CFG, inside: Block, outside: Block,
                         instrs: list[Instr]) -> None:
    """Split the (inside -> outside) edge with a block holding ``instrs``.

    Ensures the instructions execute exactly when the loop exits via this
    edge — other predecessors of ``outside`` are unaffected.
    """
    from ..rtl.instr import Jump
    landing = Block(cfg.new_label())
    landing.instrs = list(instrs) + [Jump(outside.label)]
    cfg.blocks.insert(cfg.blocks.index(inside) + 1, landing)
    term = inside.terminator
    if term is not None and hasattr(term, "target") and \
            term.target == outside.label:
        term.target = landing.label
    CFG.remove_edge(inside, outside)
    CFG.add_edge(inside, landing)
    CFG.add_edge(landing, outside)


# ---------------------------------------------------------------------------
# reference selection and rewriting
# ---------------------------------------------------------------------------

def _streamable_reason(ref: MemRef, loop: Loop, doms: Dominators,
                       cfg: CFG) -> Optional[str]:
    """None when ``ref`` qualifies for streaming, else the stable reason
    code (a key of :data:`repro.obs.remarks.REASONS`) for the rejection."""
    if not ref.region_known or ref.iv is None:
        # The partition analysis recorded why it gave up on this address.
        return ref.analysis_note or "not-affine"
    if ref.stride == 0:
        return "zero-stride"
    if not ref.every_iteration:
        return "not-every-iteration"  # Step c: must run every iteration
    instr = ref.instr
    if not isinstance(instr, Assign):
        return "not-simple-assign"
    if ref.is_store:
        if isinstance(instr.src, (Reg, VReg, Imm)):
            return None
        return "store-src-not-reg"
    if not isinstance(instr.dst, (Reg, VReg)):
        return "not-simple-assign"
    def_counts = count_defs(cfg)
    if def_counts.get(instr.dst, 0) != 1:
        return "multi-def-dst"
    return None


def _streamable(ref: MemRef, loop: Loop, doms: Dominators, cfg: CFG) -> bool:
    return _streamable_reason(ref, loop, doms, cfg) is None


def _allocate_fifos(machine: Machine, candidates: list[MemRef],
                    normals: list[MemRef]) -> list[tuple[MemRef, int]]:
    """Assign FIFO indices per (bank, direction) class."""
    chosen: list[tuple[MemRef, int]] = []
    classes: dict[tuple[str, str], list[MemRef]] = {}
    for ref in candidates:
        bank = "f" if ref.mem.fp else "r"
        direction = "out" if ref.is_store else "in"
        classes.setdefault((bank, direction), []).append(ref)
    normal_classes = set()
    for ref in normals:
        bank = "f" if ref.mem.fp else "r"
        direction = "out" if ref.is_store else "in"
        normal_classes.add((bank, direction))
    for key, refs in classes.items():
        fifo_max = machine.fifo_count
        if key in normal_classes:
            available = [1]
        elif len(refs) <= fifo_max:
            available = list(range(len(refs)))
        else:
            # Too many candidates: the overflow falls back to normal
            # loads, which claim FIFO 0, leaving only FIFO 1.
            available = [1]
        for ref, fifo in zip(refs, available):
            chosen.append((ref, fifo))
    return chosen


def _stream_base(ref: MemRef, cfg: CFG, loop: Loop,
                 doms: Dominators) -> Expr:
    """First-element address, valid in the pre-header (IV holds iv0).

    A constant entering IV value is folded into the displacement, giving
    the ``r19 := (16) + r22`` form of the paper's Figure 7.
    """
    from ..recurrence.partitions import _iv_initial
    initial = _iv_initial(ref.iv, loop, cfg, doms, count_defs(cfg))
    if isinstance(initial, Imm) and isinstance(initial.value, int):
        expr: Expr = Imm(ref.cee * initial.value)
    else:
        expr = BinOp("*", Imm(ref.cee), ref.iv)
    if ref.addr_base is not None:
        expr = BinOp("+", expr, ref.addr_base)
    if ref.raw_offset:
        expr = BinOp("+", expr, Imm(ref.raw_offset))
    return fold(expr)


def _rewrite_reference(cfg: CFG, loop: Loop, ref: MemRef, fifo: Reg,
                       liveness) -> None:
    """Step h: change the load/store to use the FIFO register."""
    instr = ref.instr
    block = ref.block
    if ref.is_store:
        pos = block.instrs.index(instr)
        enqueue = Assign(fifo, instr.src,
                         comment="enqueue to output stream",
                         lno=instr.lno)
        enqueue.origin = "streaming:fifo"
        block.instrs[pos] = enqueue
        return
    dst = instr.dst
    # Count in-loop uses; the FIFO register dequeues on every read, so a
    # direct substitution is only possible for a single textual use in a
    # once-per-iteration block.
    use_sites = []
    for b in cfg.blocks:
        for other in b.instrs:
            if other is instr:
                continue
            occurrences = sum(
                1 for e in other.use_exprs()
                for sub in _walk(e) if sub == dst)
            if occurrences:
                use_sites.append((b, other, occurrences))
    doms = compute_dominators(cfg)
    single_direct = (
        len(use_sites) == 1 and use_sites[0][2] == 1 and
        loop.contains(use_sites[0][0]) and
        all(doms.dominates(use_sites[0][0], tail)
            for tail in loop.back_tails)
    )
    if single_direct:
        _b, user, _n = use_sites[0]
        user.map_exprs(lambda e: subst(e, {dst: fifo}))
        block.instrs.remove(instr)
    else:
        pos = block.instrs.index(instr)
        dequeue = Assign(dst, fifo, comment="dequeue from stream",
                         lno=instr.lno)
        dequeue.origin = "streaming:fifo"
        block.instrs[pos] = dequeue


def _walk(expr: Expr):
    from ..rtl.expr import walk
    return walk(expr)


def _try_delete_iv(cfg: CFG, loop: Loop, iv: Expr) -> bool:
    """Delete the IV update when the IV is dead (paper Step j)."""
    update = None
    other_uses_in_loop = False
    for block in loop.block_list:
        for instr in block.instrs:
            if isinstance(instr, Assign) and instr.dst == iv and \
                    instr.uses() == {iv}:
                update = (block, instr)
                continue
            if iv in instr.uses():
                other_uses_in_loop = True
    liveness = compute_liveness(cfg)
    live_outside = any(
        iv in liveness.live_in(outside)
        for _inside, outside in loop.exit_edges())
    if update is not None and not other_uses_in_loop and not live_outside:
        block, instr = update
        block.instrs.remove(instr)
        return True
    return False
