"""Seeded random Mini-C program generator for differential fuzzing.

:func:`gen_program` maps a seed to a self-contained Mini-C program:
global arrays, deterministic initialization, a random selection of
loop kernels (affine maps, recurrences of varying degree, nested
loops, aliasing shifts, reductions, strided and conditional accesses,
bounded ``while`` loops, double-precision kernels), and a final
checksum loop folding every array and scalar into the returned ``int``.
Same seed, same program — the generator draws only from its own
``random.Random`` instance.

The output is constrained to the subset of Mini-C on which every
backend is *defined to agree*, so any disagreement the differential
harness finds is a real bug, not semantic slack:

* integer arithmetic wraps to 32 bits in all backends and ``/``/``%``
  follow C (truncate toward zero), so any values are fair game — but
  divisors are always non-zero constants;
* shift counts are masked to 5 bits everywhere, so shifts are safe;
* doubles stay bounded (multipliers of magnitude <= 1, no FP division,
  trip counts <= the largest array) so double-to-int conversions at
  the checksum never overflow;
* every array index is provably in range: kernels derive loop bounds
  from the array sizes they index (which is also how the generator
  produces the interesting edge cases — a derived bound of 0 or 1
  yields zero- and single-trip loops).
"""

from __future__ import annotations

import random

__all__ = ["gen_program"]

#: Array-size pool: small primes and powers of two, plus degenerate
#: sizes that force zero/one-trip loops downstream.
_SIZES = (1, 2, 3, 5, 8, 13, 16, 24, 33, 48, 64)

_INT_BINOPS = ("+", "-", "*", "&", "|", "^")


class _Gen:
    """One program's worth of generator state."""

    def __init__(self, rng: random.Random) -> None:
        self.rng = rng
        self.lines: list[str] = []
        #: (name, size) for int arrays / double arrays
        self.int_arrays: list[tuple[str, int]] = []
        self.dbl_arrays: list[tuple[str, int]] = []

    # ------------------------------------------------------------ helpers --
    def pick_int_array(self) -> tuple[str, int]:
        return self.rng.choice(self.int_arrays)

    def const(self, lo: int = -9, hi: int = 9) -> int:
        return self.rng.randint(lo, hi)

    def emit(self, line: str, indent: int = 1) -> None:
        self.lines.append("    " * indent + line)

    # ------------------------------------------------------------ kernels --
    def k_affine_map(self) -> None:
        """dst[i*s1+o1] = src[i*s2+o2] op c  over a derived safe range."""
        rng = self.rng
        dst, dn = self.pick_int_array()
        src, sn = self.pick_int_array()
        s1, s2 = rng.randint(1, 3), rng.randint(1, 3)
        o1, o2 = rng.randint(0, 2), rng.randint(0, 2)
        hi = min((dn - o1 + s1 - 1) // s1, (sn - o2 + s2 - 1) // s2)
        op = rng.choice(_INT_BINOPS)
        c = self.const()
        def idx(s, o):
            term = "i" if s == 1 else f"i * {s}"
            return term if o == 0 else f"{term} + {o}"
        self.emit(f"for (i = 0; i < {hi}; i++)")
        self.emit(f"{dst}[{idx(s1, o1)}] = {src}[{idx(s2, o2)}] {op} {c};", 2)

    def k_recurrence(self) -> None:
        """a[i] = a[i-d] op b[i]: a memory recurrence of degree d."""
        rng = self.rng
        a, an = self.pick_int_array()
        b, bn = self.pick_int_array()
        d = rng.randint(1, 3)
        hi = min(an, bn)
        op = rng.choice(("+", "-", "^"))
        if hi <= d:
            hi = d  # zero-trip: the loop header still exercises bounds
        self.emit(f"for (i = {d}; i < {hi}; i++)")
        self.emit(f"{a}[i] = {a}[i - {d}] {op} {b}[i];", 2)

    def k_nested(self) -> None:
        """Row/column walk with 2D-style flattened indexing."""
        rng = self.rng
        a, an = self.pick_int_array()
        b, bn = self.pick_int_array()
        n = min(an, bn)
        cols = rng.randint(1, max(1, min(6, n)))
        rows = n // cols
        self.emit(f"for (i = 0; i < {rows}; i++)")
        self.emit(f"for (j = 0; j < {cols}; j++)", 2)
        self.emit(f"{a}[i * {cols} + j] = {b}[i * {cols} + j] + i - j;", 3)

    def k_alias_shift(self) -> None:
        """In-place overlapping read/write: a[i±1] from a[i]."""
        rng = self.rng
        a, an = self.pick_int_array()
        if rng.random() < 0.5:
            self.emit(f"for (i = 1; i < {an}; i++)")
            self.emit(f"{a}[i - 1] = {a}[i] + 1;", 2)
        else:
            self.emit(f"for (i = {an} - 1; i > 0; i--)")
            self.emit(f"{a}[i] = {a}[i - 1] - 1;", 2)

    def k_reduction(self) -> None:
        rng = self.rng
        a, an = self.pick_int_array()
        k = self.const(-5, 5)
        step = rng.choice((1, 1, 2, 3))
        self.emit(f"for (i = 0; i < {an}; i += {step})"
                  if step > 1 else f"for (i = 0; i < {an}; i++)")
        self.emit(f"s = s + {a}[i] * {k};", 2)

    def k_while(self) -> None:
        a, an = self.pick_int_array()
        step = self.rng.randint(1, 3)
        self.emit("k = 0;")
        self.emit(f"while (k < {an} && s < 100000) {{")
        self.emit(f"s = s + {a}[k];", 2)
        self.emit(f"k = k + {step};", 2)
        self.emit("}")

    def k_conditional(self) -> None:
        a, an = self.pick_int_array()
        t = self.const()
        self.emit(f"for (i = 0; i < {an}; i++)")
        self.emit(f"if ({a}[i] > {t}) s = s + 1; else s = s - {a}[i];", 2)

    def k_strided_store(self) -> None:
        rng = self.rng
        a, an = self.pick_int_array()
        st = rng.randint(2, 4)
        o = rng.randint(0, 1)
        hi = max(0, (an - o + st - 1) // st)
        self.emit(f"for (i = 0; i < {hi}; i++)")
        self.emit(f"{a}[i * {st} + {o}] = i * 2 - s % 7;", 2)

    def k_shift_mix(self) -> None:
        a, an = self.pick_int_array()
        sh = self.rng.randint(1, 4)
        self.emit(f"for (i = 0; i < {an}; i++)")
        self.emit(f"{a}[i] = ({a}[i] << {sh}) ^ ({a}[i] >> 1);", 2)

    def k_division(self) -> None:
        a, an = self.pick_int_array()
        d = self.rng.choice((2, 3, 4, 5, 7))
        self.emit(f"for (i = 0; i < {an}; i++)")
        self.emit(f"{a}[i] = {a}[i] / {d} + {a}[i] % {d};", 2)

    def k_double(self) -> None:
        """First-order FP recurrence with decaying coefficients."""
        rng = self.rng
        x, xn = rng.choice(self.dbl_arrays)
        y, yn = rng.choice(self.dbl_arrays)
        hi = min(xn, yn)
        c1 = rng.choice(("0.5", "0.25", "0.75"))
        c2 = rng.choice(("0.25", "0.125", "0.0625"))
        self.emit(f"for (i = 1; i < {hi}; i++)")
        self.emit(f"{x}[i] = {y}[i] * {c1} + {x}[i - 1] * {c2};", 2)

    def k_double_map(self) -> None:
        rng = self.rng
        x, xn = rng.choice(self.dbl_arrays)
        y, yn = rng.choice(self.dbl_arrays)
        hi = min(xn, yn)
        op = rng.choice(("+", "-"))
        c = rng.choice(("0.5", "1.0", "0.125"))
        self.emit(f"for (i = 0; i < {hi}; i++)")
        self.emit(f"{x}[i] = {y}[i] {op} i * {c};", 2)

    def k_zero_trip(self) -> None:
        """Edge-case bounds: loops that run zero or one time."""
        a, an = self.pick_int_array()
        lo = self.rng.choice((an, an - 1, 0))
        hi = self.rng.choice((lo, lo + 1, 0))
        hi = min(hi, an)
        self.emit(f"for (i = {lo}; i < {hi}; i++)")
        self.emit(f"{a}[i] = {a}[i] + 100;", 2)

    # ----------------------------------------------------------- assembly --
    def generate(self) -> str:
        rng = self.rng
        for n in range(rng.randint(2, 3)):
            self.int_arrays.append((f"ga{n}", rng.choice(_SIZES)))
        for n in range(rng.randint(0, 2)):
            self.dbl_arrays.append((f"gx{n}", rng.choice(_SIZES)))

        decls = [f"int {name}[{size}];" for name, size in self.int_arrays]
        decls += [f"double {name}[{size}];" for name, size in self.dbl_arrays]

        self.emit("int i; int j; int k; int s;")
        self.emit("double fs;")
        self.emit("s = 0; fs = 0.0; j = 0; k = 0;")
        for name, size in self.int_arrays:
            m = rng.choice((7, 11, 13, 17))
            c1, c2 = rng.randint(1, 9), rng.randint(0, 9)
            off = rng.randint(0, m // 2)
            self.emit(f"for (i = 0; i < {size}; i++)")
            self.emit(f"{name}[i] = (i * {c1} + {c2}) % {m} - {off};", 2)
        for name, size in self.dbl_arrays:
            c = rng.choice(("0.125", "0.25", "0.0625"))
            self.emit(f"for (i = 0; i < {size}; i++)")
            self.emit(f"{name}[i] = i * {c} + 1.0;", 2)

        kernels = [self.k_affine_map, self.k_recurrence, self.k_nested,
                   self.k_alias_shift, self.k_reduction, self.k_while,
                   self.k_conditional, self.k_strided_store,
                   self.k_shift_mix, self.k_division, self.k_zero_trip]
        if self.dbl_arrays:
            kernels += [self.k_double, self.k_double_map]
        for _ in range(rng.randint(2, 5)):
            rng.choice(kernels)()

        for pos, (name, size) in enumerate(self.int_arrays):
            self.emit(f"for (i = 0; i < {size}; i++)")
            self.emit(f"s = s * 31 + {name}[i] * {pos + 1};", 2)
        for name, size in self.dbl_arrays:
            self.emit(f"for (i = 0; i < {size}; i++)")
            self.emit(f"fs = fs + {name}[i];", 2)
        if self.dbl_arrays:
            # fs is a sum of <= a few thousand bounded terms: the
            # double-to-int conversion cannot overflow
            self.emit("s = s + (int)(fs * 16.0);")
        self.emit("return s;")

        body = "\n".join(self.lines)
        header = "\n".join(decls)
        return f"{header}\n\nint main(void) {{\n{body}\n}}\n"


def gen_program(seed: int) -> str:
    """Deterministically generate one Mini-C program from ``seed``."""
    return _Gen(random.Random(seed)).generate()
