"""Deterministic fault injection for the WM simulator.

A :class:`FaultPlan` is a frozen schedule of faults keyed by simulation
cycle.  Installing one on :class:`~repro.sim.machine.WMSimulator`
(``fault_plan=`` constructor argument) forces the reference cycle loop
— the fast path skips provably-idle cycles, so a cycle-targeted fault
could land on a cycle that is never executed — and the loop calls
:meth:`FaultPlan.apply` once per cycle, before the memory system ticks.

Faults model the failure modes the simulator must *diagnose*, not
survive: structural violations surface as structured
:class:`~repro.sim.errors.SimError`\\ s whose :meth:`report` is
byte-identical for the same plan on the same program (the determinism
the reproducer bundles rely on).

Supported faults (all schedules are ``(cycle, ...)`` tuples):

* ``mem_delay`` — ``(cycle, extra)``: shift every in-flight memory
  response ``extra`` cycles later (uniformly, preserving delivery
  order).  Latency tolerance test; typically ends in a longer run, a
  deadlock report, or a cycle-limit report.
* ``mem_drop`` — ``(cycle,)``: discard the oldest in-flight response
  without delivering it.  The consumer's FIFO reservation starves and
  the simulator reports a ``deadlock``.
* ``fifo_overflow`` — ``(cycle, fifo)``: fill the named output FIFO
  (``r0``/``r1``/``f0``/``f1``) and push once more → ``fifo-overflow``.
* ``fifo_underflow`` — ``(cycle, fifo)``: drain the named input FIFO
  and pop once more → ``fifo-underflow``.
* ``stream_close`` — ``(cycle, fifo)``: close the named input FIFO's
  oldest pending reservation, modelling a stream-exhaustion race (the
  consumer observes the stream ending early: wrong results or
  deadlock, both detected downstream).
* ``kill_jobs`` — *job indexes*, not cycles: which jobs of a
  :func:`repro.perf.parallel.run_jobs` batch have their worker process
  hard-killed (see ``_run_job_indexed`` there).

Each injected fault is also emitted as a ``fault-*`` remark when a
remark collector is installed, so traces show faults inline with the
simulation events they perturb.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field, fields

from ..obs import Remark, get_remark_sink

__all__ = ["FaultPlan"]

#: FIFO short name -> (bank, index) key used by the simulator's
#: ``in_fifos``/``out_fifos`` dicts.
_FIFO_KEYS = {
    "r0": ("r", 0), "r1": ("r", 1), "f0": ("f", 0), "f1": ("f", 1),
}


def _emit(reason: str, cycle: int, detail: str, **args) -> None:
    sink = get_remark_sink()
    if sink.enabled:
        sink.emit(Remark("faults", "analysis", reason, detail=detail,
                         args={"cycle": cycle, **args}))


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic, picklable schedule of injected faults."""

    mem_delay: tuple = ()       # (cycle, extra_cycles) pairs
    mem_drop: tuple = ()        # cycles
    fifo_overflow: tuple = ()   # (cycle, fifo_name) pairs
    fifo_underflow: tuple = ()  # (cycle, fifo_name) pairs
    stream_close: tuple = ()    # (cycle, fifo_name) pairs
    kill_jobs: tuple = ()       # run_jobs batch indexes (not cycles)
    #: cycle -> [(kind, arg)] schedule, derived; not part of identity
    _schedule: dict = field(default=None, compare=False, repr=False)

    def __post_init__(self) -> None:
        schedule: dict[int, list] = {}
        for cycle, extra in self.mem_delay:
            schedule.setdefault(cycle, []).append(("mem-delay", extra))
        for cycle in self.mem_drop:
            schedule.setdefault(cycle, []).append(("mem-drop", None))
        for cycle, name in self.fifo_overflow:
            schedule.setdefault(cycle, []).append(("fifo-overflow", name))
        for cycle, name in self.fifo_underflow:
            schedule.setdefault(cycle, []).append(("fifo-underflow", name))
        for cycle, name in self.stream_close:
            schedule.setdefault(cycle, []).append(("stream-close", name))
        object.__setattr__(self, "_schedule", schedule)

    @property
    def empty(self) -> bool:
        return not self._schedule and not self.kill_jobs

    # ------------------------------------------------------------- apply --
    def apply(self, sim, cycle: int) -> None:
        """Inject every fault scheduled for ``cycle`` into ``sim``.

        Called by the reference cycle loop at the top of each cycle.
        Structural faults raise :class:`FifoError`, which the run loop
        converts to a structured ``SimError``.
        """
        actions = self._schedule.get(cycle)
        if not actions:
            return
        for kind, arg in actions:
            if kind == "mem-delay":
                self._mem_delay(sim, cycle, arg)
            elif kind == "mem-drop":
                self._mem_drop(sim, cycle)
            elif kind == "fifo-overflow":
                self._fifo_overflow(sim, cycle, arg)
            elif kind == "fifo-underflow":
                self._fifo_underflow(sim, cycle, arg)
            elif kind == "stream-close":
                self._stream_close(sim, cycle, arg)

    @staticmethod
    def _mem_delay(sim, cycle: int, extra: int) -> None:
        inflight = sim.memory._inflight
        if not inflight:
            return
        _emit("fault-mem-delay", cycle,
              f"delayed {len(inflight)} in-flight responses by {extra}",
              extra=extra, inflight=len(inflight))
        sim.memory._inflight = deque(
            (due + extra, deliver, value)
            for due, deliver, value in inflight)

    @staticmethod
    def _mem_drop(sim, cycle: int) -> None:
        inflight = sim.memory._inflight
        if not inflight:
            return
        _emit("fault-mem-drop", cycle, "dropped oldest in-flight response")
        inflight.popleft()

    @staticmethod
    def _fifo_overflow(sim, cycle: int, name: str) -> None:
        fifo = sim.out_fifos[_FIFO_KEYS[name]]
        _emit("fault-fifo-overflow", cycle,
              f"overflowing output FIFO {name}", fifo=name)
        while True:          # fills to capacity, then raises
            fifo.push(0)

    @staticmethod
    def _fifo_underflow(sim, cycle: int, name: str) -> None:
        fifo = sim.in_fifos[_FIFO_KEYS[name]]
        _emit("fault-fifo-underflow", cycle,
              f"draining input FIFO {name}", fifo=name)
        while True:          # drains buffered data, then raises
            fifo.pop()

    @staticmethod
    def _stream_close(sim, cycle: int, name: str) -> None:
        fifo = sim.in_fifos[_FIFO_KEYS[name]]
        if not fifo._sources:
            return
        _emit("fault-stream-close", cycle,
              f"closed oldest reservation of input FIFO {name}", fifo=name)
        fifo._sources[0].close()

    # ---------------------------------------------------------- manifest --
    def to_manifest(self) -> dict:
        """A JSON-stable dict round-trippable via :meth:`from_manifest`."""
        out = {}
        for f in fields(self):
            if f.name.startswith("_"):
                continue
            value = getattr(self, f.name)
            if value:
                out[f.name] = [list(v) if isinstance(v, tuple) else v
                               for v in value]
        return out

    @classmethod
    def from_manifest(cls, manifest: dict) -> "FaultPlan":
        kwargs = {}
        for f in fields(cls):
            if f.name.startswith("_") or f.name not in manifest:
                continue
            kwargs[f.name] = tuple(
                tuple(v) if isinstance(v, list) else v
                for v in manifest[f.name])
        return cls(**kwargs)
