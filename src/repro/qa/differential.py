"""Differential oracle: every backend must agree on every program.

:func:`check_program` runs one Mini-C source through

* the IR reference interpreter (the oracle),
* the WM cycle simulator at four optimization levels (O0 unoptimized,
  O1 baseline, O2 recurrence, O3 full streaming), via the decoded fast
  path,
* the WM simulator at O3 with the cycle profiler on (``profile=True``
  — observation must not perturb the machine: same value, same cycle
  count as the unprofiled run),
* the WM *reference* loop at O3 (``slow=True``, also profiled — the
  fast path must be bit-identical: same value, same globals, same
  cycle count, and the same cycle-ledger attribution),
* the WM simulator at O3 through both superinstruction tiers — the
  default run (superops + closed-form fast-forward) and a superop-only
  run (``fast_forward=False``) — whose full counter signatures
  (cycles, instructions, unit counts, memory traffic, stream elements)
  must match the slow reference exactly; a divergence is reported as a
  ``fastforward-mismatch``.  Fault-injected runs force ``slow=True``
  in the simulator itself, so a fault plan always fully de-opts,
* the scalar cost-model executor (generic-risc),

and reports the first disagreement as a :class:`Failure` — a value or
global mismatch, a cycle divergence between the fast and slow
simulator loops, a cycle-ledger attribution divergence between them,
or a crash anywhere in the stack (lexer to simulator).
Uncaught exception types are *not* absorbed: a crash inside the
harness is a finding, recorded with its exception signature so the
reducer can preserve it.

:func:`run_fuzz` drives :mod:`repro.qa.genprog` over a seed range and
collects every failure; the CLI wraps it as ``repro fuzz``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from ..compiler import compile_source, scalar_options
from ..machine.scalar import make_machine
from ..opt import OptOptions
from .genprog import gen_program

__all__ = ["CONFIGS", "Failure", "FuzzReport", "check_program", "run_fuzz"]

#: WM optimization levels compared against the oracle.
CONFIGS: dict[str, Callable[[], OptOptions]] = {
    "O0": OptOptions.unoptimized,
    "O1": OptOptions.baseline,
    "O2": OptOptions.no_streaming,
    "O3": OptOptions,
}

#: cycle budget per fuzz simulation: generated programs are tiny, so a
#: run that exceeds this reflects a livelock, and the structured
#: cycle-limit SimError it produces is recorded as a crash finding
MAX_FUZZ_CYCLES = 5_000_000


@dataclass
class Failure:
    """One differential finding, with everything a bundle needs."""

    seed: Optional[int]
    kind: str          # value-mismatch | global-mismatch | cycle-mismatch
    #                  # | ledger-mismatch | fastforward-mismatch | crash
    config: str        # which backend/level disagreed (e.g. "O3/sim")
    detail: str        # human-readable one-liner
    source: str
    expected: object = None
    actual: object = None

    def manifest(self) -> dict:
        """JSON-stable record embedded in reproducer bundles."""
        return {
            "seed": self.seed,
            "kind": self.kind,
            "config": self.config,
            "detail": self.detail,
            "expected": repr(self.expected),
            "actual": repr(self.actual),
        }


@dataclass
class FuzzReport:
    """Outcome of one fuzz run."""

    count: int = 0
    failures: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures


def _globals_of(ir_module):
    return [(name, obj.size) for name, obj in ir_module.data.items()
            if not name.startswith("str.")]


def _compare(result, oracle, ir_module, config: str,
             seed: Optional[int], source: str) -> Optional[Failure]:
    if result.value != oracle.value:
        return Failure(seed, "value-mismatch", config,
                       f"{config}: returned {result.value!r}, oracle "
                       f"{oracle.value!r}", source,
                       expected=oracle.value, actual=result.value)
    for name, size in _globals_of(ir_module):
        got = result.global_bytes(name, size)
        want = oracle.global_bytes(name, size)
        if got != want:
            return Failure(seed, "global-mismatch", config,
                           f"{config}: global {name} differs", source,
                           expected=want.hex(), actual=got.hex())
    return None


def _counter_mismatch(result, reference):
    """First differing (name, got, want) among the exact-equivalence
    counters, or None — cycles first, so a closed-form drift surfaces
    as the cycle count."""
    for name in ("cycles", "instructions", "unit_instructions",
                 "memory_reads", "memory_writes", "stream_elements"):
        got = getattr(result, name)
        want = getattr(reference, name)
        if got != want:
            return (name, got, want)
    return None


def check_program(source: str,
                  seed: Optional[int] = None) -> Optional[Failure]:
    """Run every backend over ``source``; first disagreement or None.

    The oracle (IR interpreter) runs once; each backend result is
    compared to it value-first, then global-by-global.  At O3 the
    simulator additionally runs with the cycle profiler on (observation
    must not change value or cycle count) and runs the slow reference
    loop profiled, which must match the fast path's value, cycle count
    *and* cycle-ledger attribution exactly.
    """
    try:
        oracle = None
        ir_module = None
        for config, make_options in CONFIGS.items():
            res = compile_source(source, options=make_options())
            if oracle is None:
                oracle = res.run_oracle()
                ir_module = res.ir
            sim = res.simulate(max_cycles=MAX_FUZZ_CYCLES)
            failure = _compare(sim, oracle, ir_module, f"{config}/sim",
                               seed, source)
            if failure is not None:
                return failure
            if config == "O3":
                prof = res.simulate(max_cycles=MAX_FUZZ_CYCLES,
                                    profile=True)
                failure = _compare(prof, oracle, ir_module,
                                   "O3/sim-profile", seed, source)
                if failure is not None:
                    return failure
                if prof.cycles != sim.cycles:
                    return Failure(
                        seed, "cycle-mismatch", "O3/sim-profile",
                        f"profiled run {prof.cycles} cycles, "
                        f"unprofiled {sim.cycles}", source,
                        expected=sim.cycles, actual=prof.cycles)
                slow = res.simulate(max_cycles=MAX_FUZZ_CYCLES,
                                    slow=True, profile=True)
                failure = _compare(slow, oracle, ir_module,
                                   "O3/sim-reference", seed, source)
                if failure is not None:
                    return failure
                if slow.cycles != sim.cycles:
                    return Failure(
                        seed, "cycle-mismatch", "O3/sim-reference",
                        f"fast path {sim.cycles} cycles, reference "
                        f"{slow.cycles}", source,
                        expected=slow.cycles, actual=sim.cycles)
                fast_ledger = prof.telemetry.ledger.to_dict()
                slow_ledger = slow.telemetry.ledger.to_dict()
                if fast_ledger != slow_ledger:
                    keys = [k for k in fast_ledger
                            if fast_ledger[k] != slow_ledger.get(k)]
                    return Failure(
                        seed, "ledger-mismatch", "O3/sim-profile",
                        "cycle-ledger attribution differs between fast "
                        f"and reference loops (keys: {', '.join(keys)})",
                        source)
                # Superinstruction tiers: ``sim`` above ran with
                # superops + fast-forward (the defaults); its full
                # counter signature must match the slow reference
                # exactly, and so must the superop-only tier (closed-
                # form advance disabled).  Profiled/fault runs never
                # arm the engine, so the ledger comparison above pairs
                # two per-cycle runs by construction.
                mismatch = _counter_mismatch(sim, slow)
                if mismatch is not None:
                    return Failure(
                        seed, "fastforward-mismatch", "O3/sim-fastforward",
                        f"superops+fast-forward diverged from the slow "
                        f"reference on {mismatch[0]}", source,
                        expected=mismatch[2], actual=mismatch[1])
                ffonly = res.simulate(max_cycles=MAX_FUZZ_CYCLES,
                                      fast_forward=False)
                failure = _compare(ffonly, oracle, ir_module,
                                   "O3/sim-superop", seed, source)
                if failure is not None:
                    return failure
                mismatch = _counter_mismatch(ffonly, slow)
                if mismatch is not None:
                    return Failure(
                        seed, "fastforward-mismatch", "O3/sim-superop",
                        f"superop-only run diverged from the slow "
                        f"reference on {mismatch[0]}", source,
                        expected=mismatch[2], actual=mismatch[1])
        scalar = compile_source(source, machine=make_machine("generic-risc"),
                                options=scalar_options())
        out = scalar.execute()
        return _compare(out, oracle, scalar.ir, "generic-risc/execute",
                        seed, source)
    except Exception as exc:
        return Failure(seed, "crash", "pipeline",
                       f"{type(exc).__name__}: {exc}", source,
                       actual=f"{type(exc).__name__}: {exc}")


def run_fuzz(count: int, seed: int = 0,
             on_failure: Optional[Callable[[Failure], None]] = None,
             progress: Optional[Callable[[int, int], None]] = None,
             ) -> FuzzReport:
    """Differentially test ``count`` generated programs.

    Seeds run consecutively from ``seed``; each failure is appended to
    the report and handed to ``on_failure`` (the CLI's bundle writer)
    as soon as it is found, so an interrupted run keeps its findings.
    """
    report = FuzzReport(count=count)
    for n in range(count):
        program_seed = seed + n
        failure = check_program(gen_program(program_seed),
                                seed=program_seed)
        if failure is not None:
            report.failures.append(failure)
            if on_failure is not None:
                on_failure(failure)
        if progress is not None:
            progress(n + 1, count)
    return report
