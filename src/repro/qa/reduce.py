"""Delta-debugging source reducer (ddmin over lines).

Given a failing Mini-C program and an *interestingness* predicate —
"does this candidate still exhibit the failure?" — :func:`reduce_source`
shrinks the program with the classic ddmin algorithm of Zeller &
Hildebrandt: partition the line list into ``n`` chunks, try removing
each chunk and each chunk's complement, double granularity when stuck,
stop at single-line granularity with no removable line.  A final
sweep retries individual lines until a fixed point, which catches
removals that only become possible after other lines are gone.

The predicate sees candidate *source text* and must return ``True``
only when the candidate still fails *the same way* (same mismatch, or
same crash signature); candidates that fail to parse simply return
``False`` inside the predicate, so the reducer needs no grammar
knowledge.  :func:`failure_predicate` builds the standard predicate
from a :class:`~repro.qa.differential.Failure`: same ``kind`` and, for
crashes, the same exception signature.
"""

from __future__ import annotations

from typing import Callable, Optional

from .differential import Failure, check_program

__all__ = ["failure_predicate", "reduce_source"]


def failure_predicate(failure: Failure) -> Callable[[str], bool]:
    """Does a candidate still exhibit ``failure``'s failure?

    Matches on the failure ``kind``; crash findings additionally pin
    the exception signature (type + message) so reduction cannot drift
    from the original crash to an unrelated one introduced by an
    ill-formed candidate (those raise parse errors — different
    signature — and are rejected).
    """
    def interesting(candidate: str) -> bool:
        got = check_program(candidate)
        if got is None or got.kind != failure.kind:
            return False
        if failure.kind == "crash":
            return got.detail == failure.detail
        return True
    return interesting


def _join(lines: list) -> str:
    return "\n".join(lines) + "\n"


def reduce_source(source: str, interesting: Callable[[str], bool],
                  max_tests: int = 2000) -> str:
    """Shrink ``source`` while ``interesting`` keeps returning True.

    Returns the smallest found variant (the original if nothing could
    be removed, or if the original itself is not interesting —
    non-reproducible failures are returned unreduced rather than
    reduced to an empty program).  ``max_tests`` bounds the number of
    predicate invocations; the reducer returns its best-so-far when
    the budget runs out.
    """
    lines = [ln for ln in source.splitlines() if ln.strip()]
    if not lines or not interesting(_join(lines)):
        return source
    tests = 1

    def check(candidate: list) -> bool:
        nonlocal tests
        if tests >= max_tests:
            return False
        tests += 1
        return interesting(_join(candidate))

    n = 2
    while len(lines) >= 2:
        chunk = max(1, len(lines) // n)
        starts = range(0, len(lines), chunk)
        reduced = False
        # try each complement (remove one chunk)
        for start in starts:
            candidate = lines[:start] + lines[start + chunk:]
            if candidate and check(candidate):
                lines = candidate
                n = max(2, n - 1)
                reduced = True
                break
        if not reduced:
            # try each chunk alone (keep one chunk)
            for start in starts:
                candidate = lines[start:start + chunk]
                if len(candidate) < len(lines) and check(candidate):
                    lines = candidate
                    n = 2
                    reduced = True
                    break
        if not reduced:
            if chunk <= 1:
                break
            n = min(len(lines), n * 2)
        if tests >= max_tests:
            break
    # fixed-point single-line elimination
    changed = True
    while changed and tests < max_tests:
        changed = False
        for i in range(len(lines) - 1, -1, -1):
            if len(lines) < 2:
                break
            candidate = lines[:i] + lines[i + 1:]
            if check(candidate):
                lines = candidate
                changed = True
    return _join(lines)
