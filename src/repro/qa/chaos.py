"""Seeded chaos harness for the serve tier.

``repro chaos`` starts a real daemon (supervised worker pool, persistent
artifact store, flight recorder — the production wiring, not a mock)
and attacks it with a deterministic, seeded fault plan while closed-loop
clients keep real traffic flowing:

* **worker kills** — SIGKILL a random pool worker at a seeded cadence,
  exercising death-retry, backoff restarts, and the circuit breaker;
* **torn / slow store I/O** — a :class:`repro.perf.store.StoreFaults`
  hook truncates a fraction of artifact writes and delays a fraction of
  store operations, exercising read-path quarantine and GC;
* **socket resets** — clients drop connections mid-request, exercising
  the daemon's write-error paths;
* **deadline storms** — a fraction of requests carry near-impossible
  ``deadline_ms`` budgets (drawn from a nonce source pool disjoint from
  normal traffic, so coalescing cannot leak a shed onto a patient
  request), exercising dispatch-time shedding;
* **refusal bursts** — periodic queue-saturating walls of doomed
  requests, exercising overload refusal and the black-box burst trigger.

The harness is a *verdict machine*, not a demo: every response is
checked against mechanical invariants, and the run fails loudly (with a
flight-recorder dump) on the first class of violation:

1. every awaited request gets exactly one terminal response, echoing
   its unique id;
2. every ``ok`` response is **byte-identical** (exit code, stdout,
   stderr) to running the same command through the local CLI;
3. every error response is from the allowed fault vocabulary
   (``overloaded`` / ``draining`` / ``deadline_exceeded`` /
   ``op_timeout`` / worker-death give-ups);
4. the daemon's own ledger balances:
   ``total == ok + error + refused + coalesced``;
5. after the agitators stop, the daemon recovers to ``healthy``;
6. after the drain, nothing is orphaned (empty queue, no in-flight
   futures, zero outstanding);
7. the store held the line: ``read_errors == quarantined`` (every
   torn artifact was quarantined, never served) and
   ``evicted_young == 0`` (the min-age floor was honored).

Same seed, same plan: the kill cadence, fault coin-flips, request mix,
and burst schedule all derive from per-role ``random.Random`` streams
keyed off the plan seed, so a failing run is re-runnable.
"""

from __future__ import annotations

import os
import signal
import tempfile
import threading
import time
from dataclasses import asdict, dataclass
from random import Random
from typing import Optional

__all__ = ["ChaosPlan", "ChaosReport", "run_chaos", "format_chaos_report"]

#: Manifest format version (plan round-trip stability).
_PLAN_VERSION = 1

#: Error vocabulary a chaos run is allowed to produce.  Anything else
#: in a response's ``error`` field is an invariant violation.
_ALLOWED_ERRORS = frozenset(
    {"overloaded", "draining", "deadline_exceeded"})
_ALLOWED_ERROR_PREFIXES = ("op_timeout", "worker died twice")

#: Normal-traffic corpus: (op, args, source).  Small programs with
#: distinct sources so the cache and coalescer both see repeats and
#: variety.  Byte-identity expectations are computed per run through
#: the local CLI, so the corpus needs no golden files.
_CORPUS: tuple = (
    ("run", (), "int main(void) { return 6 * 7; }\n"),
    ("run", (), "int main(void) {\n"
                "  int i; int s;\n"
                "  s = 0;\n"
                "  for (i = 0; i < 10; i = i + 1) { s = s + i; }\n"
                "  return s;\n"
                "}\n"),
    ("compile", (), "int main(void) { return 1 + 2; }\n"),
    ("compile", ("--opt", "none"),
     "int main(void) { return 9 - 4; }\n"),
)

#: Deadline-storm nonce sources: disjoint from the corpus by
#: construction, so a storm request can never coalesce with (and shed)
#: a patient one.
_NONCE_POOL = tuple(
    ("run", (), f"int main(void) {{ return {100 + k}; }}\n")
    for k in range(8))


@dataclass(frozen=True)
class ChaosPlan:
    """One seeded, frozen fault schedule.  Same plan, same chaos."""

    seed: int = 0
    duration_s: float = 20.0
    clients: int = 4
    workers: int = 2
    kill_interval_s: float = 2.0
    socket_reset_rate: float = 0.05
    torn_rate: float = 0.05
    slow_rate: float = 0.1
    deadline_storm_rate: float = 0.15
    refusal_burst_s: float = 6.0

    def manifest(self) -> dict:
        """A JSON-safe description that round-trips the plan."""
        return {"version": _PLAN_VERSION, **asdict(self)}

    @classmethod
    def from_manifest(cls, document: dict) -> "ChaosPlan":
        if document.get("version") != _PLAN_VERSION:
            raise ValueError(
                f"unsupported chaos-plan version "
                f"{document.get('version')!r}")
        fields = {k: v for k, v in document.items() if k != "version"}
        return cls(**fields)

    def rng(self, role: str) -> Random:
        """An independent deterministic stream for one agitator role."""
        return Random(f"{self.seed}:{role}")


#: Alias for the report dict ``run_chaos`` returns (documented shape,
#: not a class: it must stay trivially JSON-serializable).
ChaosReport = dict


def _allowed_error(error: object) -> bool:
    if not isinstance(error, str):
        return False
    return error in _ALLOWED_ERRORS or \
        error.startswith(_ALLOWED_ERROR_PREFIXES)


def _expected_outputs(requests: tuple, spool_dir: str) -> dict:
    """Ground truth: each corpus entry run through the local CLI.

    Uses the same spool directory the daemon will use, so outputs that
    embed the spooled source path are byte-stable between the local run
    and the served run.
    """
    from ..serve.handlers import execute_argv, resolve_args
    expected = {}
    for op, args, source in requests:
        argv = resolve_args(tuple(args), source, spool_dir)
        expected[(op, tuple(args), source)] = execute_argv([op, *argv])
    return expected


class _Ledger:
    """Thread-shared outcome accounting for every awaited request."""

    def __init__(self) -> None:
        self.lock = threading.Lock()
        self.sent = 0
        self.ok = 0
        self.byte_identical = 0
        self.errors: dict[str, int] = {}
        self.transport_errors = 0
        self.resets_injected = 0
        self.violations: list[dict] = []

    def violate(self, invariant: str, detail: str) -> None:
        with self.lock:
            if len(self.violations) < 50:      # keep the report bounded
                self.violations.append(
                    {"invariant": invariant, "detail": detail})


def _check_response(ledger: _Ledger, request_id: str, payload: dict,
                    response: dict, expected: dict,
                    corpus_key: tuple) -> None:
    """Apply the per-response invariants (1)-(3)."""
    if response.get("id") != request_id:
        ledger.violate(
            "one-response-per-id",
            f"sent id {request_id!r}, response echoed "
            f"{response.get('id')!r}")
        return
    if response.get("ok"):
        want_code, want_out, want_err = expected[corpus_key]
        got = (response.get("exit_code"), response.get("stdout"),
               response.get("stderr"))
        if got == (want_code, want_out, want_err):
            with ledger.lock:
                ledger.ok += 1
                ledger.byte_identical += 1
        else:
            with ledger.lock:
                ledger.ok += 1
            ledger.violate(
                "byte-identity",
                f"op={payload['op']} id={request_id}: served "
                f"(exit={got[0]}) differs from local CLI "
                f"(exit={want_code})")
        return
    error = response.get("error")
    with ledger.lock:
        label = error if isinstance(error, str) else repr(error)
        ledger.errors[label] = ledger.errors.get(label, 0) + 1
    if not _allowed_error(error):
        ledger.violate(
            "allowed-errors",
            f"op={payload['op']} id={request_id}: unexpected error "
            f"{error!r}")


def _client_loop(index: int, plan: ChaosPlan, socket_path: str,
                 expected: dict, ledger: _Ledger,
                 stop_at: float) -> None:
    """One closed-loop client: seeded request mix, checked responses."""
    import socket as socket_module

    from ..serve.client import request
    from ..serve.protocol import encode_line

    rng = plan.rng(f"client:{index}")
    sequence = 0
    while time.monotonic() < stop_at:
        sequence += 1
        request_id = f"c{index}-{sequence}"
        storm = rng.random() < plan.deadline_storm_rate
        op, args, source = rng.choice(
            _NONCE_POOL if storm else _CORPUS)
        payload: dict = {"op": op, "args": list(args), "source": source,
                         "id": request_id}
        if storm:
            payload["deadline_ms"] = rng.uniform(0.01, 0.2)
        if rng.random() < plan.socket_reset_rate:
            # Fault injection, not a request we await: connect, send,
            # hang up before the response — the daemon must shrug.
            with ledger.lock:
                ledger.resets_injected += 1
            try:
                sock = socket_module.socket(socket_module.AF_UNIX,
                                            socket_module.SOCK_STREAM)
                sock.settimeout(5.0)
                sock.connect(socket_path)
                sock.sendall(encode_line(payload))
                sock.close()
            except OSError:
                pass
            continue
        with ledger.lock:
            ledger.sent += 1
        try:
            response = request(payload, socket_path, timeout=60.0,
                               retries=2)
        except (ConnectionError, TimeoutError, OSError) as exc:
            # The daemon never restarts during a run, so a transport
            # failure on an awaited request is itself a violation.
            with ledger.lock:
                ledger.transport_errors += 1
            ledger.violate(
                "one-response-per-id",
                f"id={request_id}: transport failure "
                f"{type(exc).__name__}: {exc}")
            continue
        _check_response(ledger, request_id, payload, response,
                        expected, (op, tuple(args), source))


def _killer_loop(plan: ChaosPlan, supervisor, stop_at: float) -> None:
    """SIGKILL a random pool worker at a seeded, jittered cadence."""
    rng = plan.rng("kill")
    if plan.kill_interval_s <= 0:
        return
    while time.monotonic() < stop_at:
        time.sleep(min(stop_at - time.monotonic() + 0.01,
                       rng.uniform(0.5, 1.5) * plan.kill_interval_s))
        if time.monotonic() >= stop_at:
            return
        pids = supervisor.worker_pids()
        if not pids:
            continue
        try:
            os.kill(rng.choice(pids), signal.SIGKILL)
        except (ProcessLookupError, PermissionError):
            pass


def _burst_loop(plan: ChaosPlan, socket_path: str, expected: dict,
                ledger: _Ledger, queue_depth: int,
                stop_at: float) -> None:
    """Periodic queue-saturating walls of doomed-deadline requests."""
    rng = plan.rng("burst")
    if plan.refusal_burst_s <= 0:
        return
    burst_seq = 0
    while time.monotonic() < stop_at:
        time.sleep(min(stop_at - time.monotonic() + 0.01,
                       rng.uniform(0.5, 1.5) * plan.refusal_burst_s))
        if time.monotonic() >= stop_at:
            return
        burst_seq += 1
        threads = []
        for lane in range(queue_depth * 2):
            op, args, source = rng.choice(_NONCE_POOL)
            payload = {"op": op, "args": list(args), "source": source,
                       "id": f"b{burst_seq}-{lane}",
                       "deadline_ms": 0.05}
            threads.append(threading.Thread(
                target=_burst_one,
                args=(payload, socket_path, expected, ledger,
                      (op, tuple(args), source)),
                daemon=True))
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60.0)


def _burst_one(payload: dict, socket_path: str, expected: dict,
               ledger: _Ledger, corpus_key: tuple) -> None:
    from ..serve.client import request
    with ledger.lock:
        ledger.sent += 1
    try:
        response = request(payload, socket_path, timeout=60.0,
                           retries=2)
    except (ConnectionError, TimeoutError, OSError) as exc:
        with ledger.lock:
            ledger.transport_errors += 1
        ledger.violate("one-response-per-id",
                       f"id={payload['id']}: transport failure "
                       f"{type(exc).__name__}: {exc}")
        return
    _check_response(ledger, payload["id"], payload, response,
                    expected, corpus_key)


def run_chaos(seed: int = 0, duration_s: float = 20.0, clients: int = 4,
              workers: int = 2, kill_interval_s: float = 2.0,
              socket_reset_rate: float = 0.05, torn_rate: float = 0.05,
              slow_rate: float = 0.1, deadline_storm_rate: float = 0.15,
              refusal_burst_s: float = 6.0,
              blackbox_dir: Optional[str] = None,
              queue_depth: int = 16) -> ChaosReport:
    """One full chaos run; returns the machine-readable report.

    ``report["ok"]`` is the verdict; ``report["violations"]`` lists
    what broke (first 50), and ``report["blackbox"]`` names the
    flight-recorder dump written when anything did.
    """
    from ..perf.cache import clear_cache, configure_disk_store
    from ..perf.store import StoreFaults
    from ..serve.daemon import ServeConfig, start_daemon_thread

    plan = ChaosPlan(
        seed=seed, duration_s=duration_s, clients=clients,
        workers=workers, kill_interval_s=kill_interval_s,
        socket_reset_rate=socket_reset_rate, torn_rate=torn_rate,
        slow_rate=slow_rate, deadline_storm_rate=deadline_storm_rate,
        refusal_burst_s=refusal_burst_s)
    root = tempfile.mkdtemp(prefix="repro-chaos-")
    spool_dir = os.path.join(root, "spool")
    cache_dir = os.path.join(root, "cache")
    dump_dir = blackbox_dir or os.path.join(root, "blackbox")
    os.makedirs(spool_dir, exist_ok=True)

    # Ground truth first (no faults installed yet, warm = deterministic
    # fast), then arm the store: workers fork from this process, so the
    # fault hook rides into every (re)spawned worker.  Clearing the
    # in-memory compile cache afterwards matters — forked workers would
    # otherwise inherit it warm and never touch the faulted disk tier.
    expected = _expected_outputs(_CORPUS + _NONCE_POOL, spool_dir)
    clear_cache()
    store = configure_disk_store(cache_dir)
    store.faults = StoreFaults(seed, slow_rate=plan.slow_rate,
                               slow_s=0.002, torn_rate=plan.torn_rate)

    config = ServeConfig(
        socket_path=os.path.join(root, "chaos.sock"),
        workers=plan.workers, queue_depth=queue_depth, batch_max=8,
        batch_window_ms=2.0, spool_dir=spool_dir,
        blackbox_dir=dump_dir, force_pool=True, op_timeout_s=30.0,
        heartbeat_timeout_s=5.0, gc_interval_s=1.0,
        blackbox_cooldown_s=5.0)
    handle = start_daemon_thread(config)
    daemon = handle.daemon
    ledger = _Ledger()
    started = time.monotonic()
    stop_at = started + plan.duration_s

    threads = [
        threading.Thread(target=_client_loop,
                         args=(i, plan, config.socket_path, expected,
                               ledger, stop_at),
                         name=f"chaos-client-{i}", daemon=True)
        for i in range(plan.clients)
    ]
    threads.append(threading.Thread(
        target=_burst_loop,
        args=(plan, config.socket_path, expected, ledger, queue_depth,
              stop_at),
        name="chaos-burst", daemon=True))
    if daemon._supervisor is not None:
        threads.append(threading.Thread(
            target=_killer_loop,
            args=(plan, daemon._supervisor, stop_at),
            name="chaos-killer", daemon=True))
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=plan.duration_s + 120.0)

    # Invariant (5): with the agitators gone, the daemon must find its
    # way back to healthy — a little traffic drives the breaker's
    # half-open probes.
    recovered_state = _await_recovery(plan, config.socket_path, daemon,
                                      ledger, expected)
    if recovered_state != "healthy":
        ledger.violate("recovery",
                       f"state {recovered_state!r} after agitation "
                       f"stopped (expected 'healthy')")

    final_stats = daemon.stats_snapshot()
    handle.stop(timeout=60.0)

    # Invariant (6): the drain left nothing orphaned.
    if daemon._pending or daemon._inflight or daemon._outstanding:
        ledger.violate(
            "no-orphans",
            f"post-drain queue={len(daemon._pending)} "
            f"inflight={len(daemon._inflight)} "
            f"outstanding={daemon._outstanding}")

    # Invariant (4): the daemon's ledger balances.
    counters = final_stats["metrics"]["counters"]
    total = counters.get("serve.requests.total", 0)
    accounted = (counters.get("serve.responses.ok", 0)
                 + counters.get("serve.responses.error", 0)
                 + counters.get("serve.refused.overloaded", 0)
                 + counters.get("serve.refused.draining", 0)
                 + counters.get("serve.refused.deadline_exceeded", 0)
                 + counters.get("serve.coalesced", 0))
    if total != accounted:
        ledger.violate("ledger-balance",
                       f"requests.total {total} != accounted "
                       f"{accounted} (ok+error+refused+coalesced)")

    # Invariant (7): the store held the line under torn writes.
    store_stats = store.stats()
    if store_stats["read_errors"] != store_stats["quarantined"]:
        ledger.violate(
            "store-quarantine",
            f"read_errors {store_stats['read_errors']} != "
            f"quarantined {store_stats['quarantined']}")
    if store_stats["evicted_young"]:
        ledger.violate("store-min-age",
                       f"{store_stats['evicted_young']} entries "
                       f"evicted younger than the min-age floor")

    ok = not ledger.violations
    blackbox_path = None
    if not ok:
        # Preserve the last moments for post-mortem, bypassing the
        # daemon's cooldown: a failing chaos run always gets its dump.
        try:
            blackbox_path = daemon.flight.dump(
                os.path.join(dump_dir,
                             f"repro-chaos-{os.getpid()}.json"),
                reason="chaos-violation")
        except OSError:
            blackbox_path = None

    return {
        "ok": ok,
        "plan": plan.manifest(),
        "duration_s": round(time.monotonic() - started, 3),
        "requests": {
            "sent": ledger.sent,
            "ok": ledger.ok,
            "byte_identical": ledger.byte_identical,
            "errors": dict(sorted(ledger.errors.items())),
            "transport_errors": ledger.transport_errors,
            "resets_injected": ledger.resets_injected,
        },
        "daemon": {
            "state": final_stats["state"],
            "supervisor": final_stats["supervisor"],
            "counters": {key: value for key, value in sorted(
                counters.items()) if key.startswith("serve.")},
        },
        "store": store_stats,
        "violations": ledger.violations,
        "blackbox": blackbox_path,
    }


def _await_recovery(plan: ChaosPlan, socket_path: str, daemon,
                    ledger: _Ledger, expected: dict,
                    timeout_s: float = 45.0) -> str:
    """Poll (with nudging traffic) until the daemon reports healthy."""
    from ..serve.client import request

    deadline = time.monotonic() + timeout_s
    state = daemon.stats_snapshot()["state"]
    probe = 0
    while state != "healthy" and time.monotonic() < deadline:
        probe += 1
        op, args, source = _CORPUS[probe % len(_CORPUS)]
        payload = {"op": op, "args": list(args), "source": source,
                   "id": f"recover-{probe}"}
        with ledger.lock:
            ledger.sent += 1
        try:
            response = request(payload, socket_path, timeout=60.0,
                               retries=2)
        except (ConnectionError, TimeoutError, OSError):
            with ledger.lock:
                ledger.transport_errors += 1
            ledger.violate("one-response-per-id",
                           f"id=recover-{probe}: transport failure "
                           f"during recovery")
            break
        _check_response(ledger, payload["id"], payload, response,
                        expected, (op, tuple(args), source))
        time.sleep(0.25)
        state = daemon.stats_snapshot()["state"]
    return state


def format_chaos_report(report: ChaosReport) -> str:
    """Human-readable verdict: one summary block, then violations."""
    plan = report["plan"]
    requests = report["requests"]
    lines = [
        f"chaos run — seed {plan['seed']}  "
        f"{report['duration_s']:.1f}s  "
        f"verdict {'PASS' if report['ok'] else 'FAIL'}",
        f"  requests: {requests['sent']} sent, {requests['ok']} ok "
        f"({requests['byte_identical']} byte-identical), "
        f"{sum(requests['errors'].values())} refused/errored, "
        f"{requests['resets_injected']} resets injected",
    ]
    if requests["errors"]:
        lines.append("  errors: " + ", ".join(
            f"{kind} x{count}"
            for kind, count in requests["errors"].items()))
    supervisor = report["daemon"]["supervisor"]
    if supervisor:
        lines.append(
            f"  supervisor: state {report['daemon']['state']}  "
            f"deaths {supervisor.get('deaths', 0)}  "
            f"restarts {supervisor.get('restarts', 0)}  "
            f"timeouts {supervisor.get('timeouts', 0)}  "
            f"recycles {supervisor.get('recycles', 0)}")
    store = report["store"]
    lines.append(
        f"  store: {store['entries']} entries on disk, "
        f"{store['writes']} local writes, {store['hits']} local hits, "
        f"{store['quarantined']} quarantined, "
        f"{store['tombstoned']} tombstoned, "
        f"{store['gc_removed']} gc-removed")
    for violation in report["violations"]:
        lines.append(f"  VIOLATION [{violation['invariant']}] "
                     f"{violation['detail']}")
    if report["blackbox"]:
        lines.append(f"  flight recorder dumped to "
                     f"{report['blackbox']}")
    return "\n".join(lines)
