"""Self-contained reproducer bundles.

A bundle is one directory holding everything needed to replay a
failure with no access to the fuzz run that found it::

    <dir>/
      program.c        the failing Mini-C source (reduced if available)
      original.c       pre-reduction source (only when reduced)
      manifest.json    seed, failure kind/config, expected vs actual,
                       fault plan (when one was involved), repro command
      report.json      the structured SimError report, when the failure
                       carried one

``repro fuzz --out DIR`` writes one bundle per failure (``seed-N``
subdirectories); ``repro reduce BUNDLE`` reads ``manifest.json`` +
``program.c`` back, shrinks the program, and rewrites the bundle in
place.
"""

from __future__ import annotations

import json
import os
from typing import Optional

from .differential import Failure

__all__ = ["load_bundle", "write_bundle"]


def write_bundle(directory: str, failure: Failure,
                 fault_plan: Optional[dict] = None,
                 sim_report: Optional[dict] = None,
                 original: Optional[str] = None) -> str:
    """Write ``failure`` as a reproducer bundle; returns the directory."""
    os.makedirs(directory, exist_ok=True)
    with open(os.path.join(directory, "program.c"), "w") as fh:
        fh.write(failure.source)
    if original is not None and original != failure.source:
        with open(os.path.join(directory, "original.c"), "w") as fh:
            fh.write(original)
    manifest = failure.manifest()
    manifest["repro_command"] = "python -m repro fuzz --replay program.c"
    if fault_plan:
        manifest["fault_plan"] = fault_plan
    with open(os.path.join(directory, "manifest.json"), "w") as fh:
        json.dump(manifest, fh, indent=2, sort_keys=True)
        fh.write("\n")
    if sim_report is not None:
        with open(os.path.join(directory, "report.json"), "w") as fh:
            json.dump(sim_report, fh, indent=2, sort_keys=True)
            fh.write("\n")
    return directory


def load_bundle(directory: str) -> tuple[str, dict]:
    """Read a bundle back: (source, manifest)."""
    with open(os.path.join(directory, "program.c")) as fh:
        source = fh.read()
    manifest_path = os.path.join(directory, "manifest.json")
    manifest: dict = {}
    if os.path.exists(manifest_path):
        with open(manifest_path) as fh:
            manifest = json.load(fh)
    return source, manifest
