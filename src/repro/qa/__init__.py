"""repro.qa: differential fuzzing, fault injection, and reduction.

The robustness harness around the compiler and simulator:

* :mod:`repro.qa.genprog` — seeded random Mini-C program generator;
* :mod:`repro.qa.differential` — runs one program through every
  backend (IR oracle, WM fast/slow simulation, scalar executor) at
  every optimization level and reports any disagreement;
* :mod:`repro.qa.faults` — deterministic :class:`FaultPlan` injection
  into the cycle simulator and the parallel job harness;
* :mod:`repro.qa.chaos` — seeded fault-injection runs against a live
  serve daemon (worker kills, torn store writes, socket resets,
  deadline storms) with mechanical response-correctness invariants;
* :mod:`repro.qa.reduce` — delta-debugging source reducer;
* :mod:`repro.qa.bundle` — self-contained reproducer bundles.
"""

from .chaos import ChaosPlan, format_chaos_report, run_chaos
from .differential import CONFIGS, Failure, FuzzReport, check_program, run_fuzz
from .faults import FaultPlan
from .genprog import gen_program
from .reduce import reduce_source

__all__ = [
    "CONFIGS", "ChaosPlan", "Failure", "FaultPlan", "FuzzReport",
    "check_program", "format_chaos_report", "gen_program",
    "reduce_source", "run_chaos", "run_fuzz",
]
