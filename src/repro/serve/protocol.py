"""Wire protocol of the compile service.

One request, one response, both single JSON objects.  Over the unix
socket the framing is JSON-lines (one object per ``\\n``-terminated
line, any number per connection, answered in order); over the localhost
HTTP listener the same objects travel as ``POST /v1/request`` bodies.

Request::

    {"id": 7, "op": "run", "args": ["examples/livermore5.c", "--json"]}

``op`` is a compute op (``compile`` / ``run`` / ``explain`` /
``profile`` / ``fuzz`` — exactly the CLI subcommands, executed with
``args`` as the subcommand's argument vector) or a control op
(``ping`` / ``stats`` / ``shutdown``).  ``id`` is an arbitrary JSON
scalar echoed back so clients can pipeline.  An optional ``source``
field carries inline Mini-C text: the daemon spools it to a
content-named file and substitutes that path for the ``{source}``
placeholder in ``args`` (appending it when no placeholder is present).

Compute response::

    {"id": 7, "ok": true, "exit_code": 0, "stdout": "...",
     "stderr": "..."}

``stdout``/``stderr``/``exit_code`` are exactly what the equivalent
CLI invocation would have produced — byte-identical output is the
service's core contract (and what the serve-smoke CI job asserts).
Failures at the *protocol* level (unknown op, malformed JSON,
overload, draining) instead carry ``ok: false`` and an ``error``
string; ``id`` is ``null`` when the request was too malformed to
carry one.

The single-flight identity of a request is :func:`canonical_key`:
requests equal under it are the same computation, and concurrent ones
coalesce onto one in-flight execution.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Optional

__all__ = [
    "COMPUTE_OPS", "CONTROL_OPS", "SOURCE_PLACEHOLDER",
    "ProtocolError", "Request", "parse_request", "canonical_key",
    "error_response", "encode_line", "decode_line",
]

#: Compute ops mirror CLI subcommands one-for-one.
COMPUTE_OPS = frozenset({"compile", "run", "explain", "profile", "fuzz"})
#: Control ops are answered inline by the daemon, never queued.
CONTROL_OPS = frozenset({"ping", "stats", "shutdown"})

#: Placeholder in ``args`` replaced by the spooled path of an inline
#: ``source`` payload.
SOURCE_PLACEHOLDER = "{source}"

_MAX_ARGS = 64
_MAX_SOURCE_BYTES = 1 << 20


class ProtocolError(ValueError):
    """A structurally invalid request (reported, never raised across
    the wire: the daemon turns it into an ``ok: false`` response)."""


@dataclass(frozen=True)
class Request:
    """A parsed, validated request."""

    op: str
    args: tuple = ()
    source: Optional[str] = None
    id: object = field(default=None, compare=False)

    @property
    def is_control(self) -> bool:
        return self.op in CONTROL_OPS


def parse_request(payload: object) -> Request:
    """Validate a decoded JSON payload into a :class:`Request`.

    Raises :class:`ProtocolError` with a one-line reason on anything
    structurally wrong; the daemon reports that reason to the client.
    """
    if not isinstance(payload, dict):
        raise ProtocolError("request must be a JSON object")
    op = payload.get("op")
    if not isinstance(op, str):
        raise ProtocolError("missing or non-string 'op'")
    if op not in COMPUTE_OPS and op not in CONTROL_OPS:
        allowed = ", ".join(sorted(COMPUTE_OPS | CONTROL_OPS))
        raise ProtocolError(f"unknown op {op!r} (expected one of: "
                            f"{allowed})")
    args = payload.get("args", [])
    if not isinstance(args, list) or \
            not all(isinstance(a, str) for a in args):
        raise ProtocolError("'args' must be a list of strings")
    if len(args) > _MAX_ARGS:
        raise ProtocolError(f"too many args (max {_MAX_ARGS})")
    source = payload.get("source")
    if source is not None:
        if not isinstance(source, str):
            raise ProtocolError("'source' must be a string")
        if len(source.encode("utf-8", "replace")) > _MAX_SOURCE_BYTES:
            raise ProtocolError("inline source too large")
    request_id = payload.get("id")
    if isinstance(request_id, (dict, list)):
        raise ProtocolError("'id' must be a JSON scalar")
    return Request(op=op, args=tuple(args), source=source, id=request_id)


def canonical_key(request: Request) -> tuple:
    """The single-flight identity: equal keys are the same computation."""
    return (request.op, request.args, request.source)


def error_response(message: str, request_id: object = None) -> dict:
    return {"id": request_id, "ok": False, "error": message}


def encode_line(payload: dict) -> bytes:
    """One JSON-lines frame (compact separators keep frames small)."""
    return json.dumps(payload, separators=(",", ":"),
                      default=str).encode("utf-8") + b"\n"


def decode_line(line: bytes) -> object:
    """Decode one frame; raises :class:`ProtocolError` on bad JSON."""
    try:
        return json.loads(line)
    except (ValueError, UnicodeDecodeError) as exc:
        raise ProtocolError(f"malformed JSON: {exc}") from None
