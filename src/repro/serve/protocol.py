"""Wire protocol of the compile service.

One request, one response, both single JSON objects.  Over the unix
socket the framing is JSON-lines (one object per ``\\n``-terminated
line, any number per connection, answered in order); over the localhost
HTTP listener the same objects travel as ``POST /v1/request`` bodies.

Request::

    {"id": 7, "op": "run", "args": ["examples/livermore5.c", "--json"]}

``op`` is a compute op (``compile`` / ``run`` / ``explain`` /
``profile`` / ``fuzz`` — exactly the CLI subcommands, executed with
``args`` as the subcommand's argument vector) or a control op
(``ping`` / ``stats`` / ``shutdown``).  ``id`` is an arbitrary JSON
scalar echoed back so clients can pipeline.  An optional ``source``
field carries inline Mini-C text: the daemon spools it to a
content-named file and substitutes that path for the ``{source}``
placeholder in ``args`` (appending it when no placeholder is present).
An optional ``trace: true`` flag requests end-to-end tracing: the
response then also carries a ``trace`` object — one merged Chrome
trace spanning queue wait, batch assembly, dispatch, cache lookups,
and handler execution, all stamped with one trace id (see
:class:`TraceContext`).  An optional ``deadline_ms`` number bounds how
long the client is willing to wait: a request still queued when the
budget expires is shed with an ``error: "deadline_exceeded"`` refusal
rather than executed late.

Compute response::

    {"id": 7, "ok": true, "exit_code": 0, "stdout": "...",
     "stderr": "..."}

``stdout``/``stderr``/``exit_code`` are exactly what the equivalent
CLI invocation would have produced — byte-identical output is the
service's core contract (and what the serve-smoke CI job asserts).
Failures at the *protocol* level (unknown op, malformed JSON,
overload, draining) instead carry ``ok: false`` and an ``error``
string; ``id`` is ``null`` when the request was too malformed to
carry one.

The single-flight identity of a request is :func:`canonical_key`:
requests equal under it are the same computation, and concurrent ones
coalesce onto one in-flight execution.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Optional

__all__ = [
    "COMPUTE_OPS", "CONTROL_OPS", "SOURCE_PLACEHOLDER",
    "ProtocolError", "Request", "TraceContext", "new_trace_id",
    "parse_request", "canonical_key",
    "error_response", "encode_line", "decode_line",
]

#: Compute ops mirror CLI subcommands one-for-one.
COMPUTE_OPS = frozenset({"compile", "run", "explain", "profile", "fuzz"})
#: Control ops are answered inline by the daemon, never queued.
CONTROL_OPS = frozenset({"ping", "stats", "shutdown"})

#: Placeholder in ``args`` replaced by the spooled path of an inline
#: ``source`` payload.
SOURCE_PLACEHOLDER = "{source}"

_MAX_ARGS = 64
_MAX_SOURCE_BYTES = 1 << 20
#: one day — deadlines exist to bound waiting, not to schedule it
_MAX_DEADLINE_MS = 86_400_000


class ProtocolError(ValueError):
    """A structurally invalid request (reported, never raised across
    the wire: the daemon turns it into an ``ok: false`` response)."""


@dataclass(frozen=True)
class Request:
    """A parsed, validated request."""

    op: str
    args: tuple = ()
    source: Optional[str] = None
    #: request-scoped tracing: ``trace: true`` asks the daemon to mint
    #: a TraceContext and return one merged Chrome trace covering the
    #: request's whole lifecycle.  Part of the single-flight identity —
    #: a traced request never coalesces onto an untraced execution
    #: (whose trace would not exist) or vice versa.
    trace: bool = False
    #: client-imposed completion budget in milliseconds, measured from
    #: admission.  A request still queued when its budget expires is
    #: shed with a ``deadline_exceeded`` refusal instead of executing.
    #: Excluded from the single-flight identity (``compare=False`` and
    #: absent from :func:`canonical_key`): the deadline shapes *when*
    #: an execution may be abandoned, not *what* it computes — a
    #: follower that coalesces onto a deadline-carrying leader shares
    #: the leader's fate, including a shed.
    deadline_ms: Optional[float] = field(default=None, compare=False)
    id: object = field(default=None, compare=False)

    @property
    def is_control(self) -> bool:
        return self.op in CONTROL_OPS


@dataclass(frozen=True)
class TraceContext:
    """The identity a request's spans share across process boundaries.

    Minted by the daemon at admission (one per traced request) and
    carried on the payload into whichever tier executes the request —
    the daemon's inline worker thread or a ``perf.parallel`` pool
    worker — where the handler attaches a recording tracer to it.
    Every span in the merged trace carries ``trace_id`` in its args,
    so a span tree can be filtered back out of any event soup.
    ``parent_span`` names the span that caused this context to exist
    (for a follower coalesced onto a leader's execution, the leader's
    trace id).
    """

    trace_id: str
    parent_span: str = ""

    def to_wire(self) -> dict:
        return {"trace_id": self.trace_id,
                "parent_span": self.parent_span}


def new_trace_id() -> str:
    """A fresh 64-bit hex trace id (process-unique, collision-safe
    across daemons by randomness rather than coordination)."""
    return os.urandom(8).hex()


def parse_request(payload: object) -> Request:
    """Validate a decoded JSON payload into a :class:`Request`.

    Raises :class:`ProtocolError` with a one-line reason on anything
    structurally wrong; the daemon reports that reason to the client.
    """
    if not isinstance(payload, dict):
        raise ProtocolError("request must be a JSON object")
    op = payload.get("op")
    if not isinstance(op, str):
        raise ProtocolError("missing or non-string 'op'")
    if op not in COMPUTE_OPS and op not in CONTROL_OPS:
        allowed = ", ".join(sorted(COMPUTE_OPS | CONTROL_OPS))
        raise ProtocolError(f"unknown op {op!r} (expected one of: "
                            f"{allowed})")
    args = payload.get("args", [])
    if not isinstance(args, list) or \
            not all(isinstance(a, str) for a in args):
        raise ProtocolError("'args' must be a list of strings")
    if len(args) > _MAX_ARGS:
        raise ProtocolError(f"too many args (max {_MAX_ARGS})")
    source = payload.get("source")
    if source is not None:
        if not isinstance(source, str):
            raise ProtocolError("'source' must be a string")
        if len(source.encode("utf-8", "replace")) > _MAX_SOURCE_BYTES:
            raise ProtocolError("inline source too large")
    trace = payload.get("trace", False)
    if not isinstance(trace, bool):
        raise ProtocolError("'trace' must be a boolean")
    deadline_ms = payload.get("deadline_ms")
    if deadline_ms is not None:
        if isinstance(deadline_ms, bool) or \
                not isinstance(deadline_ms, (int, float)):
            raise ProtocolError("'deadline_ms' must be a number")
        if not deadline_ms > 0:
            raise ProtocolError("'deadline_ms' must be positive")
        if deadline_ms > _MAX_DEADLINE_MS:
            raise ProtocolError(
                f"'deadline_ms' too large (max {_MAX_DEADLINE_MS})")
    request_id = payload.get("id")
    if isinstance(request_id, (dict, list)):
        raise ProtocolError("'id' must be a JSON scalar")
    return Request(op=op, args=tuple(args), source=source, trace=trace,
                   deadline_ms=deadline_ms, id=request_id)


def canonical_key(request: Request) -> tuple:
    """The single-flight identity: equal keys are the same computation.

    ``trace`` participates: a traced request's response carries a
    merged trace an untraced execution would not have produced, so the
    two are different computations even over identical (op, args,
    source).  Traced requests still coalesce with each other — the
    follower's response gets its own synthetic ``serve.coalesced``
    span referencing the leader's trace id.
    """
    return (request.op, request.args, request.source, request.trace)


def error_response(message: str, request_id: object = None) -> dict:
    return {"id": request_id, "ok": False, "error": message}


def encode_line(payload: dict) -> bytes:
    """One JSON-lines frame (compact separators keep frames small)."""
    return json.dumps(payload, separators=(",", ":"),
                      default=str).encode("utf-8") + b"\n"


def decode_line(line: bytes) -> object:
    """Decode one frame; raises :class:`ProtocolError` on bad JSON."""
    try:
        return json.loads(line)
    except (ValueError, UnicodeDecodeError) as exc:
        raise ProtocolError(f"malformed JSON: {exc}") from None
