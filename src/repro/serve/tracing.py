"""Request-scoped trace assembly: one merged Chrome trace per request.

A traced request crosses three clock domains: the daemon's event loop
(queue wait, batch assembly, dispatch), the handler's process (CLI
execution, cache lookups, compile passes — wall clock relative to the
handler's own tracer epoch), and simulated time (WM cycle spans on
virtual tracks).  The merge puts each domain on its own Chrome trace
process so Perfetto renders them as stacked timelines:

======  ==========================================
pid 1   serve daemon (wall time, epoch = admission)
pid 3   handler (wall time, shifted to dispatch)
pid 4   simulation (1 us = 1 cycle, unshifted)
======  ==========================================

Handler wall events are shifted by the daemon-measured dispatch offset
rather than by cross-process clock comparison — ``perf_counter`` is
not guaranteed comparable across processes, and the shift is exact at
the one boundary that matters (the moment the daemon handed the batch
to the execution tier).  Every non-metadata event is stamped with the
request's ``trace_id`` so one request's span tree can be filtered back
out of any aggregated event soup.
"""

from __future__ import annotations

from typing import Optional

__all__ = ["build_request_trace", "follower_trace", "trace_span_names"]

_DAEMON_PID = 1
_HANDLER_PID = 3
_SIM_PID = 4

#: Worker-side chrome_trace pids (see repro.obs.export).
_WORKER_WALL_PID = 1
_WORKER_SIM_PID = 2


def _span(name: str, ts_us: float, dur_us: float, trace_id: str,
          tid: int = 1, **args) -> dict:
    return {"name": name, "cat": "serve", "ph": "X",
            "ts": round(ts_us, 3), "dur": round(max(0.0, dur_us), 3),
            "pid": _DAEMON_PID, "tid": tid,
            "args": {"trace_id": trace_id, **args}}


def build_request_trace(trace_id: str, *, enqueued_at: float,
                        picked_at: float, shipped_at: float,
                        done_at: float, op: str, mode: str,
                        batch_size: int,
                        worker_events: Optional[list]) -> dict:
    """Merge daemon-side synthetic spans with handler-side events.

    All daemon timestamps are ``time.monotonic()`` readings; the trace
    epoch is ``enqueued_at`` (admission), so ``ts`` 0 is the instant
    the request entered the pending queue.
    """
    def us(t: float) -> float:
        return (t - enqueued_at) * 1e6

    events = [
        _span("serve.request", 0.0, us(done_at), trace_id,
              op=op, mode=mode),
        _span("queue.wait", 0.0, us(picked_at), trace_id, tid=2),
        _span("batch.assemble", us(picked_at),
              us(shipped_at) - us(picked_at), trace_id, tid=2,
              batch_size=batch_size),
        _span("pool.dispatch", us(shipped_at),
              us(done_at) - us(shipped_at), trace_id, tid=2, mode=mode),
    ]
    offset_us = us(shipped_at)
    for event in worker_events or []:
        event = dict(event)
        if event.get("ph") == "M":
            # Metadata (process/thread names): remap pid, keep as-is.
            event["pid"] = _HANDLER_PID \
                if event.get("pid") == _WORKER_WALL_PID else _SIM_PID
            events.append(event)
            continue
        if event.get("pid") == _WORKER_WALL_PID:
            event["pid"] = _HANDLER_PID
            event["ts"] = round(event.get("ts", 0.0) + offset_us, 3)
        else:
            event["pid"] = _SIM_PID
        event["args"] = {**event.get("args", {}), "trace_id": trace_id}
        events.append(event)
    events.append({"name": "process_name", "ph": "M", "pid": _DAEMON_PID,
                   "tid": 0, "args": {"name": "serve daemon"}})
    events.append({"name": "process_name", "ph": "M", "pid": _HANDLER_PID,
                   "tid": 0, "args": {"name": f"handler ({mode})"}})
    return {"traceEvents": events, "displayTimeUnit": "ms",
            "otherData": {"trace_id": trace_id, "op": op}}


def follower_trace(trace_id: str, leader_trace_id: Optional[str],
                   wait_s: float, op: str) -> dict:
    """The trace of a single-flight follower: it never executed, it
    waited — one synthetic ``serve.coalesced`` span covering the wait,
    pointing at the leader's trace id for the real execution tree."""
    span = _span("serve.coalesced", 0.0, wait_s * 1e6, trace_id,
                 op=op, leader_trace_id=leader_trace_id or "")
    meta = {"name": "process_name", "ph": "M", "pid": _DAEMON_PID,
            "tid": 0, "args": {"name": "serve daemon"}}
    return {"traceEvents": [span, meta], "displayTimeUnit": "ms",
            "otherData": {"trace_id": trace_id, "op": op,
                          "leader_trace_id": leader_trace_id or ""}}


def trace_span_names(trace: dict) -> set:
    """The set of complete-span names in a merged trace (test helper)."""
    return {event["name"] for event in trace.get("traceEvents", [])
            if event.get("ph") == "X"}
