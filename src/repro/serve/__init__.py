"""repro.serve — compile-as-a-service.

A long-running asyncio daemon that serves the CLI's compute commands
(``compile`` / ``run`` / ``explain`` / ``profile`` / ``fuzz``) over a
unix socket (JSON-lines) and optionally localhost HTTP, with
single-flight request dedup, micro-batched dispatch into the shared
``perf.parallel`` process pool, bounded-queue backpressure, graceful
drain, and per-request-type latency metrics.  Responses are
byte-identical to the equivalent CLI invocation.

Layering: :mod:`~repro.serve.protocol` (wire format and validation),
:mod:`~repro.serve.handlers` (CLI-equivalent execution, picklable for
the pool), :mod:`~repro.serve.daemon` (event loop, queueing, serving),
:mod:`~repro.serve.client` (synchronous clients).
"""

from .client import Client, http_get, http_request, is_idempotent, request
from .daemon import Daemon, DaemonHandle, ServeConfig, start_daemon_thread
from .protocol import (
    COMPUTE_OPS, CONTROL_OPS, ProtocolError, Request, TraceContext,
    canonical_key, new_trace_id, parse_request,
)
from .tracing import build_request_trace, follower_trace, trace_span_names

__all__ = [
    "COMPUTE_OPS", "CONTROL_OPS", "Client", "Daemon", "DaemonHandle",
    "ProtocolError", "Request", "ServeConfig", "TraceContext",
    "build_request_trace", "canonical_key", "follower_trace", "http_get",
    "http_request", "is_idempotent", "new_trace_id", "parse_request",
    "request", "start_daemon_thread", "trace_span_names",
]
