"""Request execution: CLI-equivalent output, computed anywhere.

The service's contract is that a served response is **byte-identical**
to running the same CLI command — the cheapest way to guarantee that
is to *be* the CLI: :func:`execute_argv` invokes
:func:`repro.cli.main` with stdout/stderr captured and ``sys.argv``
pinned to the canonical ``["repro", ...]`` vector (the run manifest
embeds ``sys.argv``, so a served ``--json`` export names the request's
own command line, not the daemon's).

Everything here is synchronous and picklable-in/picklable-out:
:func:`run_batch` is the entry point the daemon submits to the shared
``perf.parallel`` process pool (micro-batched, one pool task per
batch), and also what the inline fallback runs in a thread.  Because
capture swaps the process-global ``sys.stdout``, at most one batch may
execute per *process* at a time — the daemon serializes batches, and
pool workers each run their sub-batch sequentially.

Inline ``source`` payloads are spooled to a content-named file
(``<sha>.c``) so identical sources resolve to identical paths —
keeping outputs that embed the path (``explain``/``profile`` reports)
deterministic, and making spooling idempotent across workers.
"""

from __future__ import annotations

import functools
import hashlib
import io
import os
import sys
import tempfile
from contextlib import redirect_stderr, redirect_stdout
from typing import Optional

from .protocol import SOURCE_PLACEHOLDER

__all__ = ["execute_argv", "run_request", "run_batch", "spool_source",
           "worker_task", "EXIT_INTERNAL"]

#: Exit code reported when the handler itself fails (an exception the
#: CLI does not map to a structured exit code).  Mirrors BSD EX_SOFTWARE.
EXIT_INTERNAL = 70


def spool_source(source: str, spool_dir: str) -> str:
    """Write inline source to a content-named file; return its path.

    Content naming makes the write idempotent (concurrent spools of the
    same source race to an identical file) and the path deterministic,
    so reports that embed the source path stay byte-stable.
    """
    digest = hashlib.sha256(source.encode("utf-8")).hexdigest()[:24]
    path = os.path.join(spool_dir, f"{digest}.c")
    if not os.path.exists(path):
        os.makedirs(spool_dir, exist_ok=True)
        fd, tmp_path = tempfile.mkstemp(dir=spool_dir, suffix=".tmp")
        with os.fdopen(fd, "w") as fh:
            fh.write(source)
        os.replace(tmp_path, path)
    return path


def resolve_args(args: tuple, source: Optional[str],
                 spool_dir: str) -> list[str]:
    """The final CLI argument vector, with inline source spooled."""
    argv = list(args)
    if source is not None:
        path = spool_source(source, spool_dir)
        if SOURCE_PLACEHOLDER in argv:
            argv = [path if a == SOURCE_PLACEHOLDER else a for a in argv]
        else:
            argv.append(path)
    return argv


def execute_argv(argv: list[str]) -> tuple[int, str, str]:
    """Run one CLI invocation in-process; (exit_code, stdout, stderr).

    Exactly mirrors a ``repro ...`` shell invocation: ``SystemExit``
    with a message (argparse errors, unknown targets) lands on stderr
    with exit code 2/1 just as the interpreter would report it, and an
    unexpected exception becomes a one-line internal error with
    :data:`EXIT_INTERNAL` rather than a traceback across the wire.
    """
    from ..cli import main as cli_main
    out, err = io.StringIO(), io.StringIO()
    saved_argv = sys.argv
    sys.argv = ["repro", *argv]
    try:
        with redirect_stdout(out), redirect_stderr(err):
            try:
                code = cli_main(argv)
            except SystemExit as exc:
                if exc.code is None:
                    code = 0
                elif isinstance(exc.code, int):
                    code = exc.code
                else:
                    print(exc.code, file=sys.stderr)
                    code = 1
            except Exception as exc:          # no tracebacks over the wire
                print(f"error: internal: {type(exc).__name__}: {exc}",
                      file=sys.stderr)
                code = EXIT_INTERNAL
    finally:
        sys.argv = saved_argv
    return code, out.getvalue(), err.getvalue()


def run_request(payload: dict, spool_dir: str) -> dict:
    """Execute one compute-request payload; a response dict sans id.

    ``payload`` is the picklable ``{"op", "args", "source"}`` shape the
    daemon builds from a validated :class:`~repro.serve.protocol.Request`.
    A ``trace_id`` entry (minted by the daemon for ``trace: true``
    requests) runs the CLI under a recording tracer: the handler opens
    a ``handler.execute`` span, the instrumented compile pipeline and
    cache layer record their own spans into the same tracer, and the
    resulting Chrome events ride back on ``trace_events`` for the
    daemon to merge with its queue/batch/dispatch spans.  Tracing never
    changes the response bytes — stdout/stderr/exit code stay
    byte-identical to the untraced invocation (the observability
    layer's standing no-behavior-change guarantee).
    """
    argv = resolve_args(tuple(payload["args"]), payload.get("source"),
                        spool_dir)
    trace_id = payload.get("trace_id")
    if not trace_id:
        code, stdout, stderr = execute_argv([payload["op"], *argv])
        return {"ok": True, "exit_code": code, "stdout": stdout,
                "stderr": stderr}
    from ..obs.export import chrome_trace
    from ..obs.tracer import Tracer, use_tracer
    tracer = Tracer()
    with use_tracer(tracer):
        with tracer.span("handler.execute", category="serve",
                         op=payload["op"], trace_id=trace_id) as span:
            code, stdout, stderr = execute_argv([payload["op"], *argv])
            if span is not None and span.args is not None:
                span.args["exit_code"] = code
    return {"ok": True, "exit_code": code, "stdout": stdout,
            "stderr": stderr,
            "trace_events": chrome_trace(tracer)["traceEvents"]}


def _run_request_task(spool_dir: str, payload: dict) -> dict:
    try:
        return run_request(payload, spool_dir)
    except Exception as exc:
        return {"ok": False, "error": f"{type(exc).__name__}: {exc}"}


def worker_task(spool_dir: str):
    """The supervised-pool task: one payload in, one response out.

    Module-level partial (picklable, fork-inheritable) binding the
    daemon's spool directory; exceptions degrade to ``ok: false``
    responses exactly like :func:`run_batch` slots do, so the only way
    a supervised worker dies is a genuine process death.
    """
    return functools.partial(_run_request_task, spool_dir)


def run_batch(payloads: list[dict], spool_dir: str) -> list[dict]:
    """Pool entry point: execute one micro-batch, order-preserving.

    A request whose handler fails unexpectedly degrades to an
    ``ok: false`` response in its slot; it can never take down the
    batch (the pool-level sibling of ``run_jobs`` quarantine).
    """
    responses = []
    for payload in payloads:
        try:
            responses.append(run_request(payload, spool_dir))
        except Exception as exc:
            responses.append({"ok": False,
                              "error": f"{type(exc).__name__}: {exc}"})
    return responses
