"""The compile-as-a-service daemon: an asyncio front door.

Architecture (the paper's access/execute split, applied to serving):

* **Access** — the event loop owns intake: a JSON-lines unix-socket
  listener plus an optional localhost HTTP listener parse and validate
  requests, answer control ops inline, and *admit* compute ops into a
  bounded pending queue.  Admission is where the two serving-layer
  optimizations live:

  - **single-flight dedup**: requests with equal
    :func:`~repro.serve.protocol.canonical_key` coalesce onto one
    in-flight future — N concurrent identical requests cost one
    execution and N cheap response copies;
  - **backpressure**: a full queue refuses immediately
    (``error: "overloaded"``) instead of buffering without bound, and
    a draining daemon refuses with ``error: "draining"`` — clients
    always get a prompt, honest answer.

* **Execute** — a single dispatcher task drains the queue in
  micro-batches (up to ``batch_max`` requests, collected for at most
  ``batch_window_ms`` once the first arrives) and ships each batch to
  the execution tier: a :class:`~repro.perf.supervisor.SupervisedPool`
  of fork workers when the host has the cores for it (or
  ``force_pool``), an in-process worker thread otherwise.  The
  supervisor owns worker fault tolerance — heartbeats, per-op
  timeouts that kill-and-replace rather than wedge, max-jobs
  recycling, jittered-backoff restarts, and a circuit breaker that
  degrades the daemon to serialized cache-backed service instead of
  refusing — and guarantees exactly one response per batch item, so
  requests are never lost to a worker death.

* **Deadlines** — a request carrying ``deadline_ms`` is shed at
  dispatch-pick time once its budget expires: a terminal
  ``deadline_exceeded`` refusal instead of a late execution.  Shedding
  happens before the batch ships, so queue storms drain at refusal
  speed, not at execution speed.

Shutdown is a drain: new compute work is refused, queued work
completes, every in-flight response is delivered, and only then do the
listeners close (``shutdown`` control requests are answered with the
post-drain queue state as proof).

Per-request-type latency (p50/p95/p99) and throughput counters are
kept in a daemon-owned :class:`~repro.obs.metrics.MetricsRegistry`
(separate from the process-global registry, which CLI handlers reset
per invocation) and published by the ``stats`` control op and the
``serve.*`` metric names.
"""

from __future__ import annotations

import asyncio
import contextlib
import os
import sys
import tempfile
import threading
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Optional

from ..obs.flight import FlightRecorder
from ..obs.metrics import LogLinearHistogram, MetricsRegistry, \
    global_registry
from ..perf.cache import CACHE_DIR_ENV, cache_stats, \
    configure_disk_store, get_disk_store
from ..perf.supervisor import STATE_HEALTHY, SupervisedPool, \
    SupervisorConfig
from .handlers import EXIT_INTERNAL, run_batch, worker_task
from .protocol import (
    ProtocolError, Request, canonical_key, decode_line, encode_line,
    error_response, new_trace_id, parse_request,
)
from .tracing import build_request_trace, follower_trace

__all__ = ["ServeConfig", "Daemon", "DaemonHandle", "start_daemon_thread"]

#: Latency-histogram bucket bounds in milliseconds.
_LATENCY_BOUNDS = (1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500)


@dataclass
class ServeConfig:
    """Daemon knobs; defaults favor a small single-box deployment."""

    socket_path: str
    #: localhost HTTP listener; ``None`` disables, 0 picks an ephemeral
    #: port (recorded on ``Daemon.http_port`` once bound)
    http_port: Optional[int] = None
    http_host: str = "127.0.0.1"
    #: execution tier: >=2 on a multi-core host fans batches out over
    #: the shared ``perf.parallel`` process pool; 0/1 executes in a
    #: daemon worker thread (the only useful mode on one CPU)
    workers: int = 0
    #: pending-queue bound — admission control, not buffering
    queue_depth: int = 256
    #: micro-batch size cap and collection window
    batch_max: int = 16
    batch_window_ms: float = 2.0
    #: persistent artifact store root (``None``: honor REPRO_CACHE_DIR)
    cache_dir: Optional[str] = None
    #: spool directory for inline sources (``None``: fresh temp dir)
    spool_dir: Optional[str] = None
    #: where flight-recorder dumps land (``None``: the socket's dir)
    blackbox_dir: Optional[str] = None
    #: flight-recorder ring capacity (0: default / REPRO_FLIGHT_CAPACITY)
    flight_capacity: int = 0
    #: a refusal *burst* — this many refusals inside the window — is a
    #: dump trigger: the black box preserves what led up to the storm
    refusal_burst: int = 32
    refusal_burst_window_s: float = 5.0
    #: minimum seconds between automatic dumps (0: dump every trigger)
    blackbox_cooldown_s: float = 30.0
    #: per-op execution bound in the supervised pool: a job past this
    #: gets its worker killed and an ``op_timeout`` error (0 disables)
    op_timeout_s: float = 120.0
    #: supervised-pool worker recycling and liveness knobs
    max_jobs_per_worker: int = 256
    heartbeat_timeout_s: float = 10.0
    #: circuit breaker: ``breaker_threshold`` worker deaths inside
    #: ``breaker_window_s`` suspend pooled execution (service degrades
    #: to inline/cache-only) until a half-open probe succeeds
    breaker_threshold: int = 5
    breaker_window_s: float = 30.0
    breaker_reset_s: float = 5.0
    #: jittered exponential backoff for worker respawns after deaths
    restart_backoff_base_s: float = 0.05
    restart_backoff_cap_s: float = 2.0
    #: engage the supervised pool even on a single-CPU host, where
    #: ``workers`` alone would fall back inline (chaos/tests need the
    #: worker-death machinery regardless of core count)
    force_pool: bool = False
    #: periodic persistent-store GC sweep (seconds; 0 disables)
    gc_interval_s: float = 0.0


@dataclass
class _Pending:
    """One admitted compute request, from queue to resolution."""

    key: tuple
    payload: dict
    op: str
    future: asyncio.Future
    enqueued_at: float = field(default_factory=time.monotonic)
    #: minted trace id when the request asked for tracing
    trace_id: Optional[str] = None
    #: dispatcher pop instant (ends queue.wait) and execution-tier
    #: handoff instant (ends batch.assemble) — trace span boundaries
    picked_at: float = 0.0
    shipped_at: float = 0.0
    #: monotonic instant past which the request must not be dispatched
    #: (``deadline_ms`` requests only); the dispatcher sheds expired
    #: items with a ``deadline_exceeded`` refusal at pick time
    deadline_at: Optional[float] = None


class Daemon:
    """One serving instance.  ``executor`` (tests only) replaces the
    execution tier with ``callable(list[payload]) -> list[response]``."""

    def __init__(self, config: ServeConfig,
                 executor: Optional[Callable] = None) -> None:
        self.config = config
        self.metrics = MetricsRegistry()
        self.http_port: Optional[int] = None
        self.spool_dir: Optional[str] = config.spool_dir
        self._executor_fn = executor
        self._pending: deque[_Pending] = deque()
        self._pending_event = asyncio.Event()
        self._inflight: dict[tuple, asyncio.Future] = {}
        #: per-op log-linear latency histograms: bounded memory no
        #: matter the request volume, percentiles by bucket
        #: interpolation (the previous exact sample lists were O(n))
        self._latency: dict[str, LogLinearHistogram] = {}
        #: the always-on black box; dumped on fault/burst/signal
        self.flight = FlightRecorder(config.flight_capacity or None)
        self._refusal_times: deque[float] = deque(
            maxlen=max(1, config.refusal_burst))
        self._last_dump_at: Optional[float] = None
        self._dump_seq = 0
        self._outstanding = 0            # queued + executing requests
        self._idle_event = asyncio.Event()
        self._idle_event.set()
        self._draining = False
        self._stopped = asyncio.Event()
        self._started_at = time.monotonic()
        self._servers: list[asyncio.AbstractServer] = []
        self._conn_tasks: set[asyncio.Task] = set()
        self._dispatcher_task: Optional[asyncio.Task] = None
        self._gc_task: Optional[asyncio.Task] = None
        #: the fault-tolerant execute plane; built in start() when the
        #: config asks for pooled workers
        self._supervisor: Optional[SupervisedPool] = None
        # One worker thread: handler capture swaps process-global
        # stdout, so inline batches must serialize per process.
        self._thread_pool = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-serve-exec")

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        if self.config.cache_dir:
            configure_disk_store(self.config.cache_dir)
            # Belt and braces for the pool workers: forked children
            # inherit the configured store anyway, but spawn-started
            # ones (non-Linux) pick it up from the environment.
            os.environ[CACHE_DIR_ENV] = self.config.cache_dir
        if self.spool_dir is None:
            self.spool_dir = tempfile.mkdtemp(prefix="repro-serve-")
        else:
            os.makedirs(self.spool_dir, exist_ok=True)
        self._started_at = time.monotonic()
        if os.path.exists(self.config.socket_path):
            os.unlink(self.config.socket_path)   # stale from a dead daemon
        self._servers.append(await asyncio.start_unix_server(
            self._serve_jsonl, path=self.config.socket_path))
        if self.config.http_port is not None:
            server = await asyncio.start_server(
                self._serve_http, host=self.config.http_host,
                port=self.config.http_port)
            self._servers.append(server)
            self.http_port = server.sockets[0].getsockname()[1]
        if self._executor_fn is None and self._pool_size() > 0:
            self._supervisor = SupervisedPool(
                worker_task(self.spool_dir),
                SupervisorConfig(
                    workers=self._pool_size(),
                    max_jobs_per_worker=self.config.max_jobs_per_worker,
                    job_timeout_s=self.config.op_timeout_s,
                    heartbeat_timeout_s=self.config.heartbeat_timeout_s,
                    restart_backoff_base_s=self.config
                    .restart_backoff_base_s,
                    restart_backoff_cap_s=self.config
                    .restart_backoff_cap_s,
                    breaker_threshold=self.config.breaker_threshold,
                    breaker_window_s=self.config.breaker_window_s,
                    breaker_reset_s=self.config.breaker_reset_s),
                on_event=self._on_pool_event)
        if self.config.gc_interval_s > 0:
            self._gc_task = asyncio.ensure_future(self._gc_loop())
        self._dispatcher_task = asyncio.ensure_future(self._dispatch())

    async def run(self) -> None:
        """Serve until a ``shutdown`` request (or :meth:`shutdown`)."""
        await self._stopped.wait()
        await self.aclose()

    async def shutdown(self, reason: str = "drain") -> None:
        """Graceful drain: refuse new work, finish everything admitted.

        ``reason`` tags the stop in the flight recorder; a signal-driven
        stop (``reason="sigterm"``) also dumps the black box so the
        daemon's last moments survive the process.
        """
        self._draining = True
        self.flight.record("daemon.drain", reason=reason)
        await self._idle_event.wait()
        if reason == "sigterm":
            self._dump_blackbox("sigterm")
        self._stopped.set()
        self._pending_event.set()         # wake the dispatcher to exit

    def _dump_blackbox(self, reason: str) -> Optional[str]:
        """Write the flight-recorder ring to disk (rate-limited).

        Never raises: the black box is a best-effort diagnostic and must
        not take down the serving path that triggered it.
        """
        now = time.monotonic()
        cooldown = self.config.blackbox_cooldown_s
        if self._last_dump_at is not None and \
                now - self._last_dump_at < cooldown:
            return None
        self._last_dump_at = now
        self._dump_seq += 1
        directory = self.config.blackbox_dir or \
            os.path.dirname(self.config.socket_path) or "."
        path = os.path.join(
            directory,
            f"repro-blackbox-{os.getpid()}-{self._dump_seq}.json")
        try:
            self.flight.dump(path, reason=reason)
        except OSError:
            return None
        self.metrics.counter("serve.blackbox.dumps").inc()
        print(f"repro-serve: flight recorder dumped to {path} "
              f"({reason})", file=sys.stderr)
        return path

    async def aclose(self) -> None:
        self._stopped.set()
        self._pending_event.set()
        if self._gc_task is not None:
            self._gc_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._gc_task
            self._gc_task = None
        if self._dispatcher_task is not None:
            with contextlib.suppress(asyncio.CancelledError):
                await self._dispatcher_task
        for server in self._servers:
            server.close()
            await server.wait_closed()
        self._servers.clear()
        # Connections idling in readline() survive server.close(); the
        # drain already delivered every response, so cut them loose.
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks,
                                 return_exceptions=True)
        self._conn_tasks.clear()
        with contextlib.suppress(OSError):
            os.unlink(self.config.socket_path)
        self._thread_pool.shutdown(wait=True)
        if self._supervisor is not None:
            self._supervisor.close()
            self._supervisor = None

    # -- admission (the "access" side) ---------------------------------------

    async def handle_payload(self, payload: object) -> dict:
        """Decode-validate-admit one request; always returns a response."""
        try:
            request = parse_request(payload)
        except ProtocolError as exc:
            self.metrics.counter("serve.protocol_errors").inc()
            request_id = payload.get("id") \
                if isinstance(payload, dict) else None
            return error_response(str(exc), request_id)
        if request.is_control:
            return await self._handle_control(request)
        self.metrics.counter("serve.requests.total").inc()
        self.metrics.counter(f"serve.requests.{request.op}").inc()
        key = canonical_key(request)
        shared = self._inflight.get(key)
        if shared is not None:
            # Single-flight: ride the execution already in progress.
            self.metrics.counter("serve.coalesced").inc()
            self.flight.record("request.coalesced", op=request.op)
            wait_start = time.monotonic()
            result = await asyncio.shield(shared)
            response = {**result, "id": request.id}
            if request.trace:
                # The follower never executed: its trace is one
                # synthetic span pointing at the leader's trace id.
                leader_id = result.get("trace", {}) \
                    .get("otherData", {}).get("trace_id")
                response["trace"] = follower_trace(
                    new_trace_id(), leader_id,
                    time.monotonic() - wait_start, request.op)
            return response
        if self._draining:
            self.metrics.counter("serve.refused.draining").inc()
            self._note_refusal("draining", request.op)
            return error_response("draining", request.id)
        if len(self._pending) >= self.config.queue_depth:
            self.metrics.counter("serve.refused.overloaded").inc()
            self._note_refusal("overloaded", request.op)
            return error_response("overloaded", request.id)
        trace_id = new_trace_id() if request.trace else None
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._inflight[key] = future
        payload_out = {"op": request.op, "args": list(request.args),
                       "source": request.source}
        if trace_id is not None:
            payload_out["trace_id"] = trace_id
        deadline_at = None
        if request.deadline_ms is not None:
            deadline_at = time.monotonic() + request.deadline_ms / 1e3
        self._pending.append(_Pending(key=key, payload=payload_out,
                                      op=request.op, future=future,
                                      trace_id=trace_id,
                                      deadline_at=deadline_at))
        self._outstanding += 1
        self._idle_event.clear()
        self.metrics.gauge("serve.queue.depth").set(len(self._pending))
        self.flight.record("request.admitted", op=request.op,
                           depth=len(self._pending),
                           traced=trace_id is not None)
        self._pending_event.set()
        result = await asyncio.shield(future)
        return {**result, "id": request.id}

    def _note_refusal(self, reason: str, op: str) -> None:
        """Flight-record one refusal; a burst is a dump trigger."""
        self.flight.record("request.refused", reason=reason, op=op)
        self._bump_refusal_window()

    def _bump_refusal_window(self) -> None:
        now = time.monotonic()
        times = self._refusal_times
        times.append(now)
        if len(times) == times.maxlen and \
                now - times[0] <= self.config.refusal_burst_window_s:
            self._dump_blackbox("refusal-burst")

    def _shed_expired(self, item: _Pending, now: float) -> None:
        """Resolve a queue-expired request with ``deadline_exceeded``.

        The shed is a *terminal response*, not a dropped request: the
        item's future (and every coalesced follower awaiting it)
        resolves, the single-flight slot clears, and the outstanding
        count falls — the exactly-one-response invariant holds on this
        path like any other.  Counts toward the refusal-burst dump
        trigger: a deadline storm is a story the black box should tell.
        """
        waited_ms = round((now - item.enqueued_at) * 1e3, 3)
        self.metrics.counter("serve.refused.deadline_exceeded").inc()
        self.flight.record("deadline_exceeded", op=item.op,
                           waited_ms=waited_ms)
        self._bump_refusal_window()
        self._inflight.pop(item.key, None)
        if not item.future.done():
            item.future.set_result({"ok": False,
                                    "error": "deadline_exceeded",
                                    "waited_ms": waited_ms})
        self._outstanding -= 1
        if self._outstanding == 0:
            self._idle_event.set()

    async def _handle_control(self, request: Request) -> dict:
        if request.op == "ping":
            return {"id": request.id, "ok": True, "pong": True,
                    "pid": os.getpid(), "draining": self._draining}
        if request.op == "stats":
            return {"id": request.id, "ok": True,
                    "stats": self.stats_snapshot()}
        # shutdown: drain fully, then report the (empty) post-drain
        # state as proof of a clean stop.
        await self.shutdown()
        return {"id": request.id, "ok": True, "stopped": True,
                "queue_depth": len(self._pending),
                "inflight": len(self._inflight)}

    # -- dispatch (the "execute" side) ---------------------------------------

    async def _dispatch(self) -> None:
        loop = asyncio.get_running_loop()
        window = max(0.0, self.config.batch_window_ms) / 1e3
        while True:
            await self._pending_event.wait()
            if self._stopped.is_set() and not self._pending:
                return
            batch: list[_Pending] = []
            deadline = loop.time() + window
            while len(batch) < self.config.batch_max:
                if self._pending:
                    item = self._pending.popleft()
                    now = time.monotonic()
                    if item.deadline_at is not None \
                            and now >= item.deadline_at:
                        self._shed_expired(item, now)
                        continue
                    item.picked_at = now                # ends queue.wait
                    batch.append(item)
                    continue
                remaining = deadline - loop.time()
                if remaining <= 0 or self._stopped.is_set():
                    break
                self._pending_event.clear()
                try:
                    await asyncio.wait_for(
                        asyncio.shield(self._pending_event.wait()),
                        remaining)
                except asyncio.TimeoutError:
                    break
            if not self._pending:
                self._pending_event.clear()
            self.metrics.gauge("serve.queue.depth").set(len(self._pending))
            if batch:
                await self._run_batch(batch)

    async def _run_batch(self, batch: list[_Pending]) -> None:
        loop = asyncio.get_running_loop()
        self.metrics.histogram("serve.batch.size",
                               bounds=(1, 2, 4, 8, 16, 32)) \
            .record(len(batch))
        payloads = [item.payload for item in batch]
        shipped_at = time.monotonic()       # ends batch.assemble
        for item in batch:
            item.shipped_at = shipped_at
        try:
            if self._executor_fn is not None:
                mode = "executor"
                responses = await loop.run_in_executor(
                    self._thread_pool, self._executor_fn, payloads)
            elif self._supervisor is not None \
                    and self._supervisor.breaker_allows():
                # The supervised pool owns worker-death recovery: a
                # killed worker is replaced and its job retried once;
                # a job past op_timeout_s gets its worker killed and a
                # terminal op_timeout error — the dispatcher is never
                # wedged, and exactly one response comes back per item.
                mode = "pooled"
                self.metrics.counter("serve.batches.pooled").inc()
                timeout = self.config.op_timeout_s or None
                responses = await loop.run_in_executor(
                    self._thread_pool, self._supervisor.run_batch,
                    payloads, timeout)
            elif self._supervisor is not None:
                # Breaker open: pooled execution is suspended, but the
                # service degrades to serialized in-process execution
                # (warm compile cache in front) instead of refusing.
                mode = "degraded"
                self.metrics.counter("serve.batches.degraded").inc()
                self.flight.record("batch.degraded", batch=len(batch))
                responses = await loop.run_in_executor(
                    self._thread_pool, run_batch, payloads, self.spool_dir)
            else:
                mode = "inline"
                self.metrics.counter("serve.batches.inline").inc()
                responses = await loop.run_in_executor(
                    self._thread_pool, run_batch, payloads, self.spool_dir)
        except Exception as exc:
            mode = "error"
            self.flight.record("batch.error", batch=len(batch),
                               error=f"{type(exc).__name__}: {exc}")
            responses = [{"ok": False,
                          "error": f"{type(exc).__name__}: {exc}"}
                         for _ in batch]
        now = time.monotonic()
        faulted = False
        for item, response in zip(batch, responses):
            latency_ms = (now - item.enqueued_at) * 1e3
            self._latency.setdefault(item.op, LogLinearHistogram()) \
                .record(latency_ms)
            self.metrics.histogram(f"serve.latency_ms.{item.op}",
                                   bounds=_LATENCY_BOUNDS) \
                .record(latency_ms)
            ok = bool(response.get("ok"))
            self.metrics.counter(
                "serve.responses.ok" if ok
                else "serve.responses.error").inc()
            worker_events = response.pop("trace_events", None)
            if item.trace_id is not None:
                response["trace"] = build_request_trace(
                    item.trace_id,
                    enqueued_at=item.enqueued_at,
                    picked_at=item.picked_at or item.enqueued_at,
                    shipped_at=item.shipped_at or item.enqueued_at,
                    done_at=now, op=item.op, mode=mode,
                    batch_size=len(batch),
                    worker_events=worker_events)
            if not ok or response.get("exit_code") == EXIT_INTERNAL:
                # Handler fault: the request crashed inside the
                # execution tier (not a CLI-mapped error exit).
                faulted = True
                self.flight.record(
                    "handler.fault", op=item.op,
                    error=str(response.get("error", ""))[:200],
                    exit_code=response.get("exit_code"))
            else:
                self.flight.record("response.sent", op=item.op,
                                   latency_ms=round(latency_ms, 3))
            self._inflight.pop(item.key, None)
            if not item.future.done():
                item.future.set_result(response)
            self._outstanding -= 1
        if faulted:
            self._dump_blackbox("handler-fault")
        if self._outstanding == 0:
            self._idle_event.set()

    def _pool_size(self) -> int:
        workers = self.config.workers
        if workers >= 2 and ((os.cpu_count() or 1) >= 2
                             or self.config.force_pool):
            return workers
        return 0

    def _on_pool_event(self, kind: str, fields: dict) -> None:
        """Supervisor lifecycle events → flight ring + metrics.

        Runs on the executor thread mid-batch: ``FlightRecorder``
        appends are GIL-atomic and counter increments are safe under
        the GIL, so no hop to the event loop is needed.  A breaker
        opening is a dump trigger — the ring at that moment holds the
        death spiral that tripped it.
        """
        self.flight.record(kind, **fields)
        self.metrics.counter(f"serve.supervisor.{kind}").inc()
        if kind == "breaker_open":
            self._dump_blackbox("breaker-open")

    async def _gc_loop(self) -> None:
        """Periodic persistent-store GC: tombstone sweep + compaction.

        Runs on the daemon's single executor thread (serialized behind
        batches — a sweep never races this daemon's own handler I/O;
        concurrent *other* daemons are what the store's rename/grace
        discipline is for).
        """
        loop = asyncio.get_running_loop()
        while not self._stopped.is_set():
            try:
                await asyncio.wait_for(self._stopped.wait(),
                                       self.config.gc_interval_s)
                return
            except asyncio.TimeoutError:
                pass
            store = get_disk_store()
            if store is None:
                continue
            try:
                summary = await loop.run_in_executor(
                    self._thread_pool, store.sweep)
            except Exception:
                continue              # GC must never take the daemon down
            self.metrics.counter("serve.store.sweeps").inc()
            self.flight.record("store.sweep", **summary)

    # -- introspection -------------------------------------------------------

    def stats_snapshot(self) -> dict:
        latency = {}
        for op, hist in sorted(self._latency.items()):
            latency[op] = {
                "count": hist.count,
                "p50_ms": round(hist.percentile(0.50), 3),
                "p95_ms": round(hist.percentile(0.95), 3),
                "p99_ms": round(hist.percentile(0.99), 3),
                "mean_ms": round(hist.mean, 3),
                "max_ms": round(hist.maximum or 0.0, 3),
            }
        return {
            "pid": os.getpid(),
            "uptime_s": round(time.monotonic() - self._started_at, 3),
            "workers": self._pool_size(),
            "state": (self._supervisor.state()
                      if self._supervisor is not None else STATE_HEALTHY),
            "supervisor": (self._supervisor.stats()
                           if self._supervisor is not None else None),
            "draining": self._draining,
            "queue": {
                "depth": len(self._pending),
                "capacity": self.config.queue_depth,
                "high_water":
                    self.metrics.gauge("serve.queue.depth").high_water,
            },
            "inflight": len(self._inflight),
            "latency_ms": latency,
            "metrics": self.metrics.to_dict(),
            "cache": cache_stats(),
            "flight": {
                "recorded": self.flight.recorded,
                "dropped": self.flight.dropped,
                "capacity": self.flight.capacity,
            },
        }

    def metrics_exposition(self) -> str:
        """Prometheus text for ``GET /metrics``: the daemon's registry
        plus the process-global one (persistent-store gauges land
        there), with point-in-time gauges refreshed at scrape time."""
        self.metrics.gauge("serve.uptime_seconds").set(
            round(time.monotonic() - self._started_at, 3))
        self.metrics.gauge("serve.queue.depth").set(len(self._pending))
        self.metrics.gauge("serve.inflight").set(len(self._inflight))
        self.metrics.gauge("serve.flight.recorded").set(
            self.flight.recorded)
        return self.metrics.to_prometheus(prefix="repro") + \
            global_registry().to_prometheus(prefix="repro")

    # -- JSON-lines transport ------------------------------------------------

    async def _serve_jsonl(self, reader: asyncio.StreamReader,
                           writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
            task.add_done_callback(self._conn_tasks.discard)
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ConnectionError, asyncio.LimitOverrunError):
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                try:
                    payload = decode_line(line)
                except ProtocolError as exc:
                    response = error_response(str(exc))
                else:
                    response = await self.handle_payload(payload)
                writer.write(encode_line(response))
                await writer.drain()
        except (ConnectionError, BrokenPipeError):
            pass                                   # client went away
        except asyncio.CancelledError:
            # Only aclose() cancels connection tasks (post-drain, every
            # response delivered); finish normally so 3.11's stream
            # protocol callback doesn't trip over a cancelled task.
            pass
        finally:
            writer.close()
            # CancelledError included: a cancellation landing while we
            # await the close handshake must not leave the task
            # "cancelled" (3.11's stream-protocol callback would log a
            # spurious traceback per connection at shutdown).
            with contextlib.suppress(Exception, asyncio.CancelledError):
                await writer.wait_closed()

    # -- minimal localhost HTTP transport ------------------------------------

    async def _serve_http(self, reader: asyncio.StreamReader,
                          writer: asyncio.StreamWriter) -> None:
        try:
            status, body, content_type = await self._http_one(reader)
            writer.write(
                f"HTTP/1.1 {status}\r\n"
                f"Content-Type: {content_type}\r\n"
                f"Content-Length: {len(body)}\r\n"
                f"Connection: close\r\n\r\n".encode("ascii") + body)
            await writer.drain()
        except (ConnectionError, BrokenPipeError, asyncio.IncompleteReadError):
            pass
        finally:
            writer.close()
            with contextlib.suppress(Exception, asyncio.CancelledError):
                await writer.wait_closed()

    _JSON_CT = "application/json"
    #: Prometheus text exposition format version header
    _PROM_CT = "text/plain; version=0.0.4; charset=utf-8"

    async def _http_one(self, reader: asyncio.StreamReader) -> \
            tuple[str, bytes, str]:
        request_line = (await reader.readline()).decode("ascii", "replace")
        parts = request_line.split()
        if len(parts) < 2:
            return ("400 Bad Request",
                    b'{"ok":false,"error":"bad request"}', self._JSON_CT)
        method, path = parts[0].upper(), parts[1]
        content_length = 0
        while True:
            header = await reader.readline()
            if header in (b"\r\n", b"\n", b""):
                break
            name, _sep, value = header.decode("ascii", "replace") \
                .partition(":")
            if name.strip().lower() == "content-length":
                try:
                    content_length = int(value.strip())
                except ValueError:
                    return ("400 Bad Request",
                            b'{"ok":false,"error":"bad content-length"}',
                            self._JSON_CT)
        if method == "GET" and path == "/metrics":
            # The scrape plane: Prometheus text, no JSON envelope.
            body = self.metrics_exposition().encode("utf-8")
            return "200 OK", body, self._PROM_CT
        if method == "GET" and path in ("/v1/ping", "/v1/stats"):
            response = await self.handle_payload({"op": path[4:]})
            return ("200 OK", encode_line(response).rstrip(b"\n"),
                    self._JSON_CT)
        if method == "POST" and path == "/v1/request":
            body = await reader.readexactly(content_length) \
                if content_length else b""
            try:
                payload = decode_line(body)
            except ProtocolError as exc:
                return ("400 Bad Request",
                        encode_line(error_response(str(exc))).rstrip(b"\n"),
                        self._JSON_CT)
            response = await self.handle_payload(payload)
            status = "200 OK" if response.get("ok") else "400 Bad Request"
            return (status, encode_line(response).rstrip(b"\n"),
                    self._JSON_CT)
        return ("404 Not Found", b'{"ok":false,"error":"not found"}',
                self._JSON_CT)


# -- embedded daemon (tests, benchmarks) --------------------------------------

class DaemonHandle:
    """A daemon running on a background thread's event loop."""

    def __init__(self, daemon: Daemon, loop: asyncio.AbstractEventLoop,
                 thread: threading.Thread) -> None:
        self.daemon = daemon
        self.loop = loop
        self.thread = thread

    @property
    def socket_path(self) -> str:
        return self.daemon.config.socket_path

    @property
    def http_port(self) -> Optional[int]:
        return self.daemon.http_port

    def stop(self, timeout: float = 30.0) -> None:
        """Drain gracefully and join the serving thread."""
        if self.thread.is_alive():
            asyncio.run_coroutine_threadsafe(
                self.daemon.shutdown(), self.loop).result(timeout)
        self.thread.join(timeout)


def start_daemon_thread(config: ServeConfig,
                        executor: Optional[Callable] = None,
                        timeout: float = 30.0) -> DaemonHandle:
    """Start a daemon on a fresh event loop in a background thread.

    Returns once the listeners are bound — the caller can connect
    immediately.  Startup failures re-raise in the caller.
    """
    daemon = Daemon(config, executor=executor)
    started = threading.Event()
    state: dict = {}

    def runner() -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        state["loop"] = loop
        try:
            loop.run_until_complete(daemon.start())
        except BaseException as exc:           # surface bind errors
            state["error"] = exc
            started.set()
            loop.close()
            return
        started.set()
        try:
            loop.run_until_complete(daemon.run())
        finally:
            loop.close()

    thread = threading.Thread(target=runner, name="repro-serve",
                              daemon=True)
    thread.start()
    if not started.wait(timeout):
        raise TimeoutError("serve daemon failed to start in time")
    if "error" in state:
        raise state["error"]
    return DaemonHandle(daemon, state["loop"], thread)
