"""The compile-as-a-service daemon: an asyncio front door.

Architecture (the paper's access/execute split, applied to serving):

* **Access** — the event loop owns intake: a JSON-lines unix-socket
  listener plus an optional localhost HTTP listener parse and validate
  requests, answer control ops inline, and *admit* compute ops into a
  bounded pending queue.  Admission is where the two serving-layer
  optimizations live:

  - **single-flight dedup**: requests with equal
    :func:`~repro.serve.protocol.canonical_key` coalesce onto one
    in-flight future — N concurrent identical requests cost one
    execution and N cheap response copies;
  - **backpressure**: a full queue refuses immediately
    (``error: "overloaded"``) instead of buffering without bound, and
    a draining daemon refuses with ``error: "draining"`` — clients
    always get a prompt, honest answer.

* **Execute** — a single dispatcher task drains the queue in
  micro-batches (up to ``batch_max`` requests, collected for at most
  ``batch_window_ms`` once the first arrives) and ships each batch to
  the execution tier: the shared ``perf.parallel`` process pool when
  the host has the cores for it, an in-process worker thread otherwise.
  A batch is one pool task, so dispatch overhead (pickling, executor
  bookkeeping) amortizes across the batch; a worker death resets the
  shared pool and the batch replays inline — requests are never lost.

Shutdown is a drain: new compute work is refused, queued work
completes, every in-flight response is delivered, and only then do the
listeners close (``shutdown`` control requests are answered with the
post-drain queue state as proof).

Per-request-type latency (p50/p95/p99) and throughput counters are
kept in a daemon-owned :class:`~repro.obs.metrics.MetricsRegistry`
(separate from the process-global registry, which CLI handlers reset
per invocation) and published by the ``stats`` control op and the
``serve.*`` metric names.
"""

from __future__ import annotations

import asyncio
import contextlib
import os
import tempfile
import threading
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Callable, Optional

from ..obs.metrics import MetricsRegistry
from ..perf.cache import CACHE_DIR_ENV, cache_stats, configure_disk_store
from ..perf.parallel import get_shared_pool, reset_pool
from .handlers import run_batch
from .protocol import (
    ProtocolError, Request, canonical_key, decode_line, encode_line,
    error_response, parse_request,
)

__all__ = ["ServeConfig", "Daemon", "DaemonHandle", "start_daemon_thread"]

#: Latency-histogram bucket bounds in milliseconds.
_LATENCY_BOUNDS = (1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500)
#: Raw latency samples kept per op for exact percentiles.
_SAMPLE_CAP = 200_000


@dataclass
class ServeConfig:
    """Daemon knobs; defaults favor a small single-box deployment."""

    socket_path: str
    #: localhost HTTP listener; ``None`` disables, 0 picks an ephemeral
    #: port (recorded on ``Daemon.http_port`` once bound)
    http_port: Optional[int] = None
    http_host: str = "127.0.0.1"
    #: execution tier: >=2 on a multi-core host fans batches out over
    #: the shared ``perf.parallel`` process pool; 0/1 executes in a
    #: daemon worker thread (the only useful mode on one CPU)
    workers: int = 0
    #: pending-queue bound — admission control, not buffering
    queue_depth: int = 256
    #: micro-batch size cap and collection window
    batch_max: int = 16
    batch_window_ms: float = 2.0
    #: persistent artifact store root (``None``: honor REPRO_CACHE_DIR)
    cache_dir: Optional[str] = None
    #: spool directory for inline sources (``None``: fresh temp dir)
    spool_dir: Optional[str] = None


@dataclass
class _Pending:
    """One admitted compute request, from queue to resolution."""

    key: tuple
    payload: dict
    op: str
    future: asyncio.Future
    enqueued_at: float = field(default_factory=time.monotonic)


def _percentile(ordered: list[float], fraction: float) -> float:
    """Nearest-rank percentile of an ascending-sorted sample list."""
    if not ordered:
        return 0.0
    rank = max(0, min(len(ordered) - 1,
                      round(fraction * (len(ordered) - 1))))
    return ordered[rank]


class Daemon:
    """One serving instance.  ``executor`` (tests only) replaces the
    execution tier with ``callable(list[payload]) -> list[response]``."""

    def __init__(self, config: ServeConfig,
                 executor: Optional[Callable] = None) -> None:
        self.config = config
        self.metrics = MetricsRegistry()
        self.http_port: Optional[int] = None
        self.spool_dir: Optional[str] = config.spool_dir
        self._executor_fn = executor
        self._pending: deque[_Pending] = deque()
        self._pending_event = asyncio.Event()
        self._inflight: dict[tuple, asyncio.Future] = {}
        self._latency: dict[str, list[float]] = {}
        self._outstanding = 0            # queued + executing requests
        self._idle_event = asyncio.Event()
        self._idle_event.set()
        self._draining = False
        self._stopped = asyncio.Event()
        self._started_at = time.monotonic()
        self._servers: list[asyncio.AbstractServer] = []
        self._conn_tasks: set[asyncio.Task] = set()
        self._dispatcher_task: Optional[asyncio.Task] = None
        # One worker thread: handler capture swaps process-global
        # stdout, so inline batches must serialize per process.
        self._thread_pool = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-serve-exec")

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        if self.config.cache_dir:
            configure_disk_store(self.config.cache_dir)
            # Belt and braces for the pool workers: forked children
            # inherit the configured store anyway, but spawn-started
            # ones (non-Linux) pick it up from the environment.
            os.environ[CACHE_DIR_ENV] = self.config.cache_dir
        if self.spool_dir is None:
            self.spool_dir = tempfile.mkdtemp(prefix="repro-serve-")
        else:
            os.makedirs(self.spool_dir, exist_ok=True)
        self._started_at = time.monotonic()
        if os.path.exists(self.config.socket_path):
            os.unlink(self.config.socket_path)   # stale from a dead daemon
        self._servers.append(await asyncio.start_unix_server(
            self._serve_jsonl, path=self.config.socket_path))
        if self.config.http_port is not None:
            server = await asyncio.start_server(
                self._serve_http, host=self.config.http_host,
                port=self.config.http_port)
            self._servers.append(server)
            self.http_port = server.sockets[0].getsockname()[1]
        self._dispatcher_task = asyncio.ensure_future(self._dispatch())

    async def run(self) -> None:
        """Serve until a ``shutdown`` request (or :meth:`shutdown`)."""
        await self._stopped.wait()
        await self.aclose()

    async def shutdown(self) -> None:
        """Graceful drain: refuse new work, finish everything admitted."""
        self._draining = True
        await self._idle_event.wait()
        self._stopped.set()
        self._pending_event.set()         # wake the dispatcher to exit

    async def aclose(self) -> None:
        self._stopped.set()
        self._pending_event.set()
        if self._dispatcher_task is not None:
            with contextlib.suppress(asyncio.CancelledError):
                await self._dispatcher_task
        for server in self._servers:
            server.close()
            await server.wait_closed()
        self._servers.clear()
        # Connections idling in readline() survive server.close(); the
        # drain already delivered every response, so cut them loose.
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks,
                                 return_exceptions=True)
        self._conn_tasks.clear()
        with contextlib.suppress(OSError):
            os.unlink(self.config.socket_path)
        self._thread_pool.shutdown(wait=True)

    # -- admission (the "access" side) ---------------------------------------

    async def handle_payload(self, payload: object) -> dict:
        """Decode-validate-admit one request; always returns a response."""
        try:
            request = parse_request(payload)
        except ProtocolError as exc:
            self.metrics.counter("serve.protocol_errors").inc()
            request_id = payload.get("id") \
                if isinstance(payload, dict) else None
            return error_response(str(exc), request_id)
        if request.is_control:
            return await self._handle_control(request)
        self.metrics.counter("serve.requests.total").inc()
        self.metrics.counter(f"serve.requests.{request.op}").inc()
        key = canonical_key(request)
        shared = self._inflight.get(key)
        if shared is not None:
            # Single-flight: ride the execution already in progress.
            self.metrics.counter("serve.coalesced").inc()
            result = await asyncio.shield(shared)
            return {**result, "id": request.id}
        if self._draining:
            self.metrics.counter("serve.refused.draining").inc()
            return error_response("draining", request.id)
        if len(self._pending) >= self.config.queue_depth:
            self.metrics.counter("serve.refused.overloaded").inc()
            return error_response("overloaded", request.id)
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._inflight[key] = future
        payload_out = {"op": request.op, "args": list(request.args),
                       "source": request.source}
        self._pending.append(_Pending(key=key, payload=payload_out,
                                      op=request.op, future=future))
        self._outstanding += 1
        self._idle_event.clear()
        self.metrics.gauge("serve.queue.depth").set(len(self._pending))
        self._pending_event.set()
        result = await asyncio.shield(future)
        return {**result, "id": request.id}

    async def _handle_control(self, request: Request) -> dict:
        if request.op == "ping":
            return {"id": request.id, "ok": True, "pong": True,
                    "pid": os.getpid(), "draining": self._draining}
        if request.op == "stats":
            return {"id": request.id, "ok": True,
                    "stats": self.stats_snapshot()}
        # shutdown: drain fully, then report the (empty) post-drain
        # state as proof of a clean stop.
        await self.shutdown()
        return {"id": request.id, "ok": True, "stopped": True,
                "queue_depth": len(self._pending),
                "inflight": len(self._inflight)}

    # -- dispatch (the "execute" side) ---------------------------------------

    async def _dispatch(self) -> None:
        loop = asyncio.get_running_loop()
        window = max(0.0, self.config.batch_window_ms) / 1e3
        while True:
            await self._pending_event.wait()
            if self._stopped.is_set() and not self._pending:
                return
            batch: list[_Pending] = []
            deadline = loop.time() + window
            while len(batch) < self.config.batch_max:
                if self._pending:
                    batch.append(self._pending.popleft())
                    continue
                remaining = deadline - loop.time()
                if remaining <= 0 or self._stopped.is_set():
                    break
                self._pending_event.clear()
                try:
                    await asyncio.wait_for(
                        asyncio.shield(self._pending_event.wait()),
                        remaining)
                except asyncio.TimeoutError:
                    break
            if not self._pending:
                self._pending_event.clear()
            self.metrics.gauge("serve.queue.depth").set(len(self._pending))
            if batch:
                await self._run_batch(batch)

    async def _run_batch(self, batch: list[_Pending]) -> None:
        loop = asyncio.get_running_loop()
        self.metrics.histogram("serve.batch.size",
                               bounds=(1, 2, 4, 8, 16, 32)) \
            .record(len(batch))
        payloads = [item.payload for item in batch]
        try:
            if self._executor_fn is not None:
                responses = await loop.run_in_executor(
                    self._thread_pool, self._executor_fn, payloads)
            elif self._pool_size() > 0:
                self.metrics.counter("serve.batches.pooled").inc()
                pool = get_shared_pool(self._pool_size())
                responses = await asyncio.wrap_future(
                    pool.submit(run_batch, payloads, self.spool_dir))
            else:
                self.metrics.counter("serve.batches.inline").inc()
                responses = await loop.run_in_executor(
                    self._thread_pool, run_batch, payloads, self.spool_dir)
        except BrokenProcessPool:
            # A worker died and poisoned the executor: heal the pool
            # and replay this batch in-process — no request is lost.
            self.metrics.counter("serve.pool.broken").inc()
            reset_pool()
            responses = await loop.run_in_executor(
                self._thread_pool, run_batch, payloads, self.spool_dir)
        except Exception as exc:
            responses = [{"ok": False,
                          "error": f"{type(exc).__name__}: {exc}"}
                         for _ in batch]
        now = time.monotonic()
        for item, response in zip(batch, responses):
            latency_ms = (now - item.enqueued_at) * 1e3
            samples = self._latency.setdefault(item.op, [])
            if len(samples) < _SAMPLE_CAP:
                samples.append(latency_ms)
            self.metrics.histogram(f"serve.latency_ms.{item.op}",
                                   bounds=_LATENCY_BOUNDS) \
                .record(latency_ms)
            self.metrics.counter(
                "serve.responses.ok" if response.get("ok")
                else "serve.responses.error").inc()
            self._inflight.pop(item.key, None)
            if not item.future.done():
                item.future.set_result(response)
            self._outstanding -= 1
        if self._outstanding == 0:
            self._idle_event.set()

    def _pool_size(self) -> int:
        workers = self.config.workers
        if workers >= 2 and (os.cpu_count() or 1) >= 2:
            return workers
        return 0

    # -- introspection -------------------------------------------------------

    def stats_snapshot(self) -> dict:
        latency = {}
        for op, samples in sorted(self._latency.items()):
            ordered = sorted(samples)
            latency[op] = {
                "count": len(ordered),
                "p50_ms": round(_percentile(ordered, 0.50), 3),
                "p95_ms": round(_percentile(ordered, 0.95), 3),
                "p99_ms": round(_percentile(ordered, 0.99), 3),
                "mean_ms": round(sum(ordered) / len(ordered), 3)
                if ordered else 0.0,
                "max_ms": round(ordered[-1], 3) if ordered else 0.0,
            }
        return {
            "pid": os.getpid(),
            "uptime_s": round(time.monotonic() - self._started_at, 3),
            "workers": self._pool_size(),
            "draining": self._draining,
            "queue": {
                "depth": len(self._pending),
                "capacity": self.config.queue_depth,
                "high_water":
                    self.metrics.gauge("serve.queue.depth").high_water,
            },
            "inflight": len(self._inflight),
            "latency_ms": latency,
            "metrics": self.metrics.to_dict(),
            "cache": cache_stats(),
        }

    # -- JSON-lines transport ------------------------------------------------

    async def _serve_jsonl(self, reader: asyncio.StreamReader,
                           writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
            task.add_done_callback(self._conn_tasks.discard)
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ConnectionError, asyncio.LimitOverrunError):
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                try:
                    payload = decode_line(line)
                except ProtocolError as exc:
                    response = error_response(str(exc))
                else:
                    response = await self.handle_payload(payload)
                writer.write(encode_line(response))
                await writer.drain()
        except (ConnectionError, BrokenPipeError):
            pass                                   # client went away
        except asyncio.CancelledError:
            # Only aclose() cancels connection tasks (post-drain, every
            # response delivered); finish normally so 3.11's stream
            # protocol callback doesn't trip over a cancelled task.
            pass
        finally:
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    # -- minimal localhost HTTP transport ------------------------------------

    async def _serve_http(self, reader: asyncio.StreamReader,
                          writer: asyncio.StreamWriter) -> None:
        try:
            status, body = await self._http_one(reader)
            writer.write(
                f"HTTP/1.1 {status}\r\n"
                f"Content-Type: application/json\r\n"
                f"Content-Length: {len(body)}\r\n"
                f"Connection: close\r\n\r\n".encode("ascii") + body)
            await writer.drain()
        except (ConnectionError, BrokenPipeError, asyncio.IncompleteReadError):
            pass
        finally:
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    async def _http_one(self, reader: asyncio.StreamReader) -> \
            tuple[str, bytes]:
        request_line = (await reader.readline()).decode("ascii", "replace")
        parts = request_line.split()
        if len(parts) < 2:
            return "400 Bad Request", b'{"ok":false,"error":"bad request"}'
        method, path = parts[0].upper(), parts[1]
        content_length = 0
        while True:
            header = await reader.readline()
            if header in (b"\r\n", b"\n", b""):
                break
            name, _sep, value = header.decode("ascii", "replace") \
                .partition(":")
            if name.strip().lower() == "content-length":
                try:
                    content_length = int(value.strip())
                except ValueError:
                    return "400 Bad Request", \
                        b'{"ok":false,"error":"bad content-length"}'
        if method == "GET" and path in ("/v1/ping", "/v1/stats"):
            response = await self.handle_payload({"op": path[4:]})
            return "200 OK", encode_line(response).rstrip(b"\n")
        if method == "POST" and path == "/v1/request":
            body = await reader.readexactly(content_length) \
                if content_length else b""
            try:
                payload = decode_line(body)
            except ProtocolError as exc:
                return "400 Bad Request", \
                    encode_line(error_response(str(exc))).rstrip(b"\n")
            response = await self.handle_payload(payload)
            status = "200 OK" if response.get("ok") else "400 Bad Request"
            return status, encode_line(response).rstrip(b"\n")
        return "404 Not Found", b'{"ok":false,"error":"not found"}'


# -- embedded daemon (tests, benchmarks) --------------------------------------

class DaemonHandle:
    """A daemon running on a background thread's event loop."""

    def __init__(self, daemon: Daemon, loop: asyncio.AbstractEventLoop,
                 thread: threading.Thread) -> None:
        self.daemon = daemon
        self.loop = loop
        self.thread = thread

    @property
    def socket_path(self) -> str:
        return self.daemon.config.socket_path

    @property
    def http_port(self) -> Optional[int]:
        return self.daemon.http_port

    def stop(self, timeout: float = 30.0) -> None:
        """Drain gracefully and join the serving thread."""
        if self.thread.is_alive():
            asyncio.run_coroutine_threadsafe(
                self.daemon.shutdown(), self.loop).result(timeout)
        self.thread.join(timeout)


def start_daemon_thread(config: ServeConfig,
                        executor: Optional[Callable] = None,
                        timeout: float = 30.0) -> DaemonHandle:
    """Start a daemon on a fresh event loop in a background thread.

    Returns once the listeners are bound — the caller can connect
    immediately.  Startup failures re-raise in the caller.
    """
    daemon = Daemon(config, executor=executor)
    started = threading.Event()
    state: dict = {}

    def runner() -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        state["loop"] = loop
        try:
            loop.run_until_complete(daemon.start())
        except BaseException as exc:           # surface bind errors
            state["error"] = exc
            started.set()
            loop.close()
            return
        started.set()
        try:
            loop.run_until_complete(daemon.run())
        finally:
            loop.close()

    thread = threading.Thread(target=runner, name="repro-serve",
                              daemon=True)
    thread.start()
    if not started.wait(timeout):
        raise TimeoutError("serve daemon failed to start in time")
    if "error" in state:
        raise state["error"]
    return DaemonHandle(daemon, state["loop"], thread)
