"""Synchronous clients for the compile service.

Deliberately boring: blocking sockets, one JSON line out, one JSON
line back.  :func:`request` is the one-shot convenience (connect, ask,
close); :class:`Client` keeps a connection open for pipelining many
requests; :func:`http_request` speaks to the localhost HTTP listener
via :mod:`http.client`.  All three are what ``repro request``, the
benchmark's closed-loop workers, and the tests use — there is no
separate "internal" path.
"""

from __future__ import annotations

import http.client
import json
import random
import socket
import threading
import time
from typing import Optional

from .protocol import decode_line, encode_line

__all__ = ["Client", "request", "http_request", "http_get",
           "is_idempotent"]

#: Responses carrying a full stdout capture can be large; read frames
#: in chunks of this size.
_CHUNK = 1 << 16


class Client:
    """A persistent JSON-lines connection to the daemon's unix socket.

    Thread-safe: a lock serializes request/response pairs, so one
    client may be shared by closed-loop worker threads (each request
    still gets its own response — the daemon answers in order per
    connection).
    """

    def __init__(self, socket_path: str, timeout: float = 60.0) -> None:
        self.socket_path = socket_path
        self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self._sock.settimeout(timeout)
        self._sock.connect(socket_path)
        self._buffer = b""
        self._lock = threading.Lock()

    def request(self, payload: dict) -> dict:
        """Send one request object; block for its response object."""
        with self._lock:
            self._sock.sendall(encode_line(payload))
            return self._read_response()

    def _read_response(self) -> dict:
        while b"\n" not in self._buffer:
            chunk = self._sock.recv(_CHUNK)
            if not chunk:
                raise ConnectionError(
                    "serve daemon closed the connection")
            self._buffer += chunk
        line, _sep, self._buffer = self._buffer.partition(b"\n")
        return decode_line(line)

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "Client":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


def is_idempotent(payload: object) -> bool:
    """May this request be safely retried after an ambiguous failure?

    Every op the service exposes is a pure function of the request —
    except ``shutdown``, whose side effect (draining the daemon) must
    not be re-issued just because a connection died mid-answer.
    """
    return isinstance(payload, dict) and payload.get("op") != "shutdown"


def request(payload: dict, socket_path: str, timeout: float = 60.0,
            retries: int = 0, backoff_base_s: float = 0.05,
            backoff_cap_s: float = 1.0) -> dict:
    """One-shot: connect, send ``payload``, return the response.

    ``retries`` > 0 retries connection-level failures — ``ECONNREFUSED``
    / missing socket (daemon restarting) and a connection dropped
    before the response arrived (daemon killed mid-answer) — with
    jittered exponential backoff, **for idempotent ops only** (see
    :func:`is_idempotent`): a non-idempotent request whose fate is
    ambiguous surfaces the error to the caller instead of re-issuing.
    Response timeouts are never retried — the daemon is alive and the
    request may still complete; re-sending would double-spend it.
    """
    attempt = 0
    while True:
        try:
            with Client(socket_path, timeout=timeout) as client:
                return client.request(payload)
        except (ConnectionError, FileNotFoundError):
            # ConnectionRefusedError and mid-stream resets both land
            # here; socket.timeout is TimeoutError, which propagates.
            if attempt >= retries or not is_idempotent(payload):
                raise
            delay = min(backoff_cap_s, backoff_base_s * (2 ** attempt))
            time.sleep(delay * (0.5 + random.random()))
            attempt += 1


def http_request(payload: dict, port: int, host: str = "127.0.0.1",
                 timeout: float = 60.0,
                 path: Optional[str] = None) -> dict:
    """POST one request to the HTTP listener; return the response."""
    conn = http.client.HTTPConnection(host, port, timeout=timeout)
    try:
        body = json.dumps(payload).encode("utf-8")
        conn.request("POST", path or "/v1/request", body=body,
                     headers={"Content-Type": "application/json"})
        return json.loads(conn.getresponse().read())
    finally:
        conn.close()


def http_get(path: str, port: int, host: str = "127.0.0.1",
             timeout: float = 60.0) -> tuple[int, str, str]:
    """GET one path from the HTTP listener.

    Returns ``(status, content_type, body_text)`` — the raw plane, for
    endpoints that are not JSON envelopes (``/metrics`` is Prometheus
    text).
    """
    conn = http.client.HTTPConnection(host, port, timeout=timeout)
    try:
        conn.request("GET", path)
        response = conn.getresponse()
        return (response.status,
                response.getheader("Content-Type", ""),
                response.read().decode("utf-8", "replace"))
    finally:
        conn.close()
