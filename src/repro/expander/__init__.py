"""The code expander: abstract machine code to naive target RTLs."""

from .expand import ExpandError, expand, expand_function

__all__ = ["ExpandError", "expand", "expand_function"]
