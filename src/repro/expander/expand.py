"""The code expander: abstract machine code -> naive target RTLs.

Mirrors the paper's compiler structure: the expander translates the
front end's abstract machine code into straightforward (inefficient but
correct) code for the target machine.  Every efficiency decision —
combining, code motion, recurrence/stream detection, register
allocation — is left to the RTL optimizer.

The expansion uses virtual registers (``VReg``); only ABI registers
(stack pointer, argument/return registers, link) appear as hard
registers.  The prologue/epilogue are emitted with placeholder frame
sizes that the post-allocation fixup (:mod:`repro.opt.regalloc`)
patches once the callee-saved save area is known.
"""

from __future__ import annotations

from typing import Optional

from ..ir.module import IRFunction, IRModule
from ..ir.ops import (
    IRBin, IRCall, IRCast, IRCJump, IRCmp, IRConst, IRConstD, IRGlobalAddr,
    IRJump, IRLabel, IRLoad, IRLocalAddr, IRMove, IRRet, IRStore, IRUn,
    Temp,
)
from ..machine.base import Machine
from ..rtl.expr import BinOp, Imm, Mem, Reg, Sym, UnOp, VReg
from ..rtl.instr import (
    Assign, Call, Compare, CondJump, Instr, Jump, Label, Ret,
)
from ..rtl.module import RtlFunction, RtlModule

__all__ = ["expand", "expand_function", "ExpandError"]


class ExpandError(Exception):
    """IR that the expander cannot translate (argument overflow etc.)."""


_BANK = {"i": "r", "d": "f"}


def _vreg(temp: Temp) -> VReg:
    return VReg(_BANK[temp.bank], temp.index)


class _FuncExpander:
    """Expands one IR function to RTL for ``machine``."""

    def __init__(self, machine: Machine, fn: IRFunction,
                 label_prefix: str) -> None:
        self.machine = machine
        self.fn = fn
        self.out: list[Instr] = []
        self._label_counter = 0
        self._label_prefix = label_prefix
        self._next_vreg = {
            "r": fn.temp_counts.get("i", 0),
            "f": fn.temp_counts.get("d", 0),
        }
        self.epilogue_label = self._new_label()
        self.has_calls = any(isinstance(op, IRCall) for op in fn.body)
        abi = machine.abi
        self.sp = abi.sp
        #: byte offset of the link-register save slot (top of local area)
        self.link_slot = fn.frame_size if self.has_calls else None
        self.frame_bytes = fn.frame_size + (8 if self.has_calls else 0)

    def _new_label(self) -> str:
        self._label_counter += 1
        return f"{self._label_prefix}E{self._label_counter}"

    def _new_vreg(self, bank: str) -> VReg:
        self._next_vreg[bank] += 1
        return VReg(bank, self._next_vreg[bank] - 1)

    def emit(self, instr: Instr) -> Instr:
        self.out.append(instr)
        return instr

    # -- expansion -----------------------------------------------------------
    def expand(self) -> RtlFunction:
        abi = self.machine.abi
        sp_adjust = None
        if self.frame_bytes:
            sp_adjust = self.emit(Assign(
                self.sp, BinOp("-", self.sp, Imm(self.frame_bytes)),
                comment="allocate frame"))
        if self.link_slot is not None:
            self.emit(Assign(
                Mem(BinOp("+", self.sp, Imm(self.link_slot)), 4, False),
                abi.link, comment="save return address"))
        # Receive arguments.
        int_args = list(abi.int_args)
        fp_args = list(abi.fp_args)
        for param in self.fn.params:
            if param.bank == "d":
                if not fp_args:
                    raise ExpandError("too many double arguments")
                self.emit(Assign(_vreg(param), fp_args.pop(0),
                                 comment="receive argument"))
            else:
                if not int_args:
                    raise ExpandError("too many integer arguments")
                self.emit(Assign(_vreg(param), int_args.pop(0),
                                 comment="receive argument"))
        for op in self.fn.body:
            self._expand_op(op)
        # Epilogue (single exit).
        self.emit(Label(self.epilogue_label))
        sp_restore = None
        if self.link_slot is not None:
            self.emit(Assign(
                abi.link,
                Mem(BinOp("+", self.sp, Imm(self.link_slot)), 4, False),
                comment="restore return address"))
        if self.frame_bytes:
            sp_restore = self.emit(Assign(
                self.sp, BinOp("+", self.sp, Imm(self.frame_bytes)),
                comment="release frame"))
        live_out = {self.sp, abi.link}
        if self.fn.ret_fp is True:
            live_out.add(abi.fp_ret)
        elif self.fn.ret_fp is False:
            live_out.add(abi.int_ret)
        self.emit(Ret(live_out=live_out))
        rtl_fn = RtlFunction(
            name=self.fn.name,
            instrs=self.out,
            frame_size=self.frame_bytes,
            vreg_counts=dict(self._next_vreg),
        )
        # Markers used by the post-allocation frame fixup.
        rtl_fn.sp_adjust = sp_adjust          # type: ignore[attr-defined]
        rtl_fn.sp_restore = sp_restore        # type: ignore[attr-defined]
        rtl_fn.has_calls = self.has_calls     # type: ignore[attr-defined]
        return rtl_fn

    def _expand_op(self, op) -> None:
        cls = type(op)
        if cls is IRConst:
            self.emit(Assign(_vreg(op.dst), Imm(op.value), lno=op.line))
        elif cls is IRConstD:
            self.emit(Assign(_vreg(op.dst), Imm(float(op.value)),
                             lno=op.line))
        elif cls is IRGlobalAddr:
            self.emit(Assign(_vreg(op.dst), Sym(op.name), lno=op.line,
                             comment=f"address of {op.name}"))
        elif cls is IRLocalAddr:
            self.emit(Assign(_vreg(op.dst),
                             BinOp("+", self.sp, Imm(op.offset)),
                             lno=op.line))
        elif cls is IRLoad:
            self.emit(Assign(_vreg(op.dst),
                             Mem(_vreg(op.addr), op.width, op.fp, op.signed),
                             lno=op.line))
        elif cls is IRStore:
            self.emit(Assign(Mem(_vreg(op.addr), op.width, op.fp),
                             _vreg(op.src), lno=op.line))
        elif cls is IRBin:
            self.emit(Assign(_vreg(op.dst),
                             BinOp(op.op, _vreg(op.a), _vreg(op.b)),
                             lno=op.line))
        elif cls is IRUn:
            self.emit(Assign(_vreg(op.dst), UnOp(op.op, _vreg(op.a)),
                             lno=op.line))
        elif cls is IRCast:
            kind = {"i2d": "i2d", "d2i": "d2i", "i2c": "sext8"}[op.kind]
            self.emit(Assign(_vreg(op.dst), UnOp(kind, _vreg(op.src)),
                             lno=op.line))
        elif cls is IRMove:
            self.emit(Assign(_vreg(op.dst), _vreg(op.src), lno=op.line))
        elif cls is IRCmp:
            self._expand_cmp(op)
        elif cls is IRCJump:
            bank = "f" if op.fp else "r"
            self.emit(Compare(bank, op.op, _vreg(op.a), _vreg(op.b),
                              lno=op.line))
            self.emit(CondJump(bank, True, op.target, lno=op.line))
        elif cls is IRJump:
            self.emit(Jump(op.target, lno=op.line))
        elif cls is IRLabel:
            self.emit(Label(op.name, lno=op.line))
        elif cls is IRCall:
            self._expand_call(op)
        elif cls is IRRet:
            abi = self.machine.abi
            if op.src is not None:
                ret_reg = abi.fp_ret if op.src.bank == "d" else abi.int_ret
                self.emit(Assign(ret_reg, _vreg(op.src), lno=op.line,
                                 comment="return value"))
            self.emit(Jump(self.epilogue_label, lno=op.line))
        else:
            raise ExpandError(f"unknown IR op {cls.__name__}")

    def _expand_cmp(self, op: IRCmp) -> None:
        """Materialize a 0/1 comparison result with a branch diamond."""
        bank = "f" if op.fp else "r"
        dst = _vreg(op.dst)
        true_label = self._new_label()
        end_label = self._new_label()
        self.emit(Compare(bank, op.op, _vreg(op.a), _vreg(op.b),
                          lno=op.line))
        self.emit(CondJump(bank, True, true_label, lno=op.line))
        self.emit(Assign(dst, Imm(0), lno=op.line))
        self.emit(Jump(end_label, lno=op.line))
        self.emit(Label(true_label))
        self.emit(Assign(dst, Imm(1), lno=op.line))
        self.emit(Label(end_label))

    def _expand_call(self, op: IRCall) -> None:
        abi = self.machine.abi
        int_args = list(abi.int_args)
        fp_args = list(abi.fp_args)
        arg_regs: list[Reg] = []
        moves: list[Assign] = []
        for arg in op.args:
            if arg.bank == "d":
                if not fp_args:
                    raise ExpandError("too many double arguments")
                reg = fp_args.pop(0)
            else:
                if not int_args:
                    raise ExpandError("too many integer arguments")
                reg = int_args.pop(0)
            moves.append(Assign(reg, _vreg(arg), lno=op.line,
                                comment="pass argument"))
            arg_regs.append(reg)
        for move in moves:
            self.emit(move)
        ret_regs: list[Reg] = []
        if op.dst is not None:
            ret_regs = [abi.fp_ret if op.dst.bank == "d" else abi.int_ret]
        clobbers = abi.caller_saved() | {abi.link}
        self.emit(Call(op.name, arg_regs, ret_regs, clobbers, lno=op.line))
        if op.dst is not None:
            self.emit(Assign(_vreg(op.dst), ret_regs[0], lno=op.line,
                             comment="receive result"))


def expand_function(machine: Machine, fn: IRFunction) -> RtlFunction:
    """Expand one IR function into naive RTL for ``machine``."""
    return _FuncExpander(machine, fn, label_prefix=f"{fn.name}.").expand()


def expand(machine: Machine, module: IRModule) -> RtlModule:
    """Expand a whole IR module into naive RTL for ``machine``."""
    out = RtlModule(entry=module.entry)
    out.data = dict(module.data)
    for fn in module.functions.values():
        out.add_function(expand_function(machine, fn))
    return out
